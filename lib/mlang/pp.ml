(* Pretty-printing of the AST back to MATLAB concrete syntax.

   [expr] inserts parentheses wherever the operator nesting requires
   them, so print-then-reparse yields a structurally equal tree (the
   round-trip property checked by the test suite). *)

let prec_of_binop = function
  | Ast.Shortor -> 1
  | Ast.Shortand -> 2
  | Ast.Or -> 3
  | Ast.And -> 4
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> 5
  | Ast.Add | Ast.Sub -> 7
  | Ast.Mul | Ast.Div | Ast.Ldiv | Ast.Emul | Ast.Ediv | Ast.Eldiv -> 8
  | Ast.Pow | Ast.Epow -> 10

let prec_range = 6
let prec_unary = 9
let prec_postfix = 11

let rec expr_prec ppf (prec, e) =
  let open Ast in
  let wrap p body =
    if p < prec then Fmt.pf ppf "(%t)" body else body ppf
  in
  match e.node with
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Fmt.pf ppf "%.0f" f
      else Fmt.pf ppf "%.17g" f
  | Str s ->
      let escaped = String.concat "''" (String.split_on_char '\'' s) in
      Fmt.pf ppf "'%s'" escaped
  | Ident name | Varref name -> Fmt.string ppf name
  | Colon -> Fmt.string ppf ":"
  | End_marker -> Fmt.string ppf "end"
  | Binop (op, a, b) ->
      let p = prec_of_binop op in
      wrap p (fun ppf ->
          Fmt.pf ppf "%a %s %a" expr_prec (p, a) (binop_name op) expr_prec
            (p + 1, b))
  | Unop ((Transpose | Ctranspose) as op, a) ->
      wrap prec_postfix (fun ppf ->
          Fmt.pf ppf "%a%s" expr_prec (prec_postfix, a) (unop_name op))
  | Unop (op, a) ->
      wrap prec_unary (fun ppf ->
          Fmt.pf ppf "%s%a" (unop_name op) expr_prec (prec_unary, a))
  | Range (a, None, b) ->
      wrap prec_range (fun ppf ->
          Fmt.pf ppf "%a:%a" expr_prec
            (prec_range + 1, a)
            expr_prec
            (prec_range + 1, b))
  | Range (a, Some step, b) ->
      wrap prec_range (fun ppf ->
          Fmt.pf ppf "%a:%a:%a" expr_prec
            (prec_range + 1, a)
            expr_prec
            (prec_range + 1, step)
            expr_prec
            (prec_range + 1, b))
  | Apply (name, args) | Call (name, args) | Index (name, args) ->
      Fmt.pf ppf "%s(%a)" name
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf a -> expr_prec ppf (0, a)))
        args
  | Matrix rows ->
      let pp_row ppf row =
        Fmt.list ~sep:(Fmt.any ", ") (fun ppf a -> expr_prec ppf (0, a)) ppf row
      in
      Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp_row) rows

and binop_name op = Ast.binop_name op
and unop_name op = Ast.unop_name op

let expr ppf e = expr_prec ppf (0, e)

let lhs ppf (l : Ast.lhs) =
  match l.lv_indices with
  | None -> Fmt.string ppf l.lv_name
  | Some args ->
      Fmt.pf ppf "%s(%a)" l.lv_name (Fmt.list ~sep:(Fmt.any ", ") expr) args

let rec stmt ?(indent = 0) ppf (s : Ast.stmt) =
  let pad ppf = Fmt.pf ppf "%s" (String.make indent ' ') in
  let semi display = if display then "" else ";" in
  match s.sdesc with
  | Assign (l, e, display) ->
      Fmt.pf ppf "%t%a = %a%s" pad lhs l expr e (semi display)
  | Multi_assign (ls, e, display) ->
      Fmt.pf ppf "%t[%a] = %a%s" pad
        (Fmt.list ~sep:(Fmt.any ", ") lhs)
        ls expr e (semi display)
  | Expr (e, display) -> Fmt.pf ppf "%t%a%s" pad expr e (semi display)
  | If (branches, els) ->
      List.iteri
        (fun i (c, b) ->
          Fmt.pf ppf "%t%s %a@\n%a" pad
            (if i = 0 then "if" else "elseif")
            expr c (block ~indent:(indent + 2)) b)
        branches;
      if els <> [] then
        Fmt.pf ppf "%telse@\n%a" pad (block ~indent:(indent + 2)) els;
      Fmt.pf ppf "%tend" pad
  | While (c, b) ->
      Fmt.pf ppf "%twhile %a@\n%a%tend" pad expr c
        (block ~indent:(indent + 2))
        b pad
  | For (v, e, b) ->
      Fmt.pf ppf "%tfor %s = %a@\n%a%tend" pad v expr e
        (block ~indent:(indent + 2))
        b pad
  | Break -> Fmt.pf ppf "%tbreak" pad
  | Continue -> Fmt.pf ppf "%tcontinue" pad
  | Return -> Fmt.pf ppf "%treturn" pad

and block ?(indent = 0) ppf (b : Ast.block) =
  List.iter (fun s -> Fmt.pf ppf "%a@\n" (stmt ~indent) s) b

let func ppf (f : Ast.func) =
  let pp_rets ppf = function
    | [] -> ()
    | [ r ] -> Fmt.pf ppf "%s = " r
    | rs -> Fmt.pf ppf "[%a] = " (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) rs
  in
  Fmt.pf ppf "function %a%s(%a)@\n%a%s" pp_rets f.returns f.fname
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    f.params (block ~indent:2) f.fbody "end"

let program ppf (p : Ast.program) =
  block ppf p.script;
  List.iter (fun f -> Fmt.pf ppf "@\n%a@\n" func f) p.funcs

let expr_to_string e = Fmt.str "%a" expr e
let program_to_string p = Fmt.str "%a" program p

(* --- annotated dump ------------------------------------------------------ *)

(* [annotated_program_to_string] renders the tree one node per line,
   children indented two spaces, each node followed by the type/shape
   that inference wrote into its annotation and, where the frame/cell
   broadcasting rule lifts a lower-ranked operand, the number of frame
   axes lifted over.  This is the [otterc dump --ast] format; the
   golden tests pin it exactly. *)

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Fmt.str "%.0f" f
  else Fmt.str "%.17g" f

let ann_to_string (a : Ast.ann) =
  let frame = if a.frame > 0 then Fmt.str " [frame-lift %d]" a.frame else "" in
  Fmt.str " : %a%s" Ty.pp_vt a.ty frame

let rec dump_expr buf indent (e : Ast.expr) =
  let pad = String.make indent ' ' in
  let line label kids =
    Buffer.add_string buf (Fmt.str "%s%s%s\n" pad label (ann_to_string e.ann));
    List.iter (dump_expr buf (indent + 2)) kids
  in
  match e.node with
  | Ast.Num f -> line (Fmt.str "Num %s" (num_to_string f)) []
  | Ast.Str s -> line (Fmt.str "Str '%s'" s) []
  | Ast.Ident name -> line (Fmt.str "Ident %s" name) []
  | Ast.Varref name -> line (Fmt.str "Varref %s" name) []
  | Ast.Colon -> line "Colon" []
  | Ast.End_marker -> line "End" []
  | Ast.Binop (op, a, b) ->
      line (Fmt.str "Binop %s" (Ast.binop_name op)) [ a; b ]
  | Ast.Unop (op, a) -> line (Fmt.str "Unop %s" (Ast.unop_name op)) [ a ]
  | Ast.Range (a, None, b) -> line "Range" [ a; b ]
  | Ast.Range (a, Some step, b) -> line "Range" [ a; step; b ]
  | Ast.Apply (name, args) -> line (Fmt.str "Apply %s" name) args
  | Ast.Call (name, args) -> line (Fmt.str "Call %s" name) args
  | Ast.Index (name, args) -> line (Fmt.str "Index %s" name) args
  | Ast.Matrix rows ->
      let cols = match rows with row :: _ -> List.length row | [] -> 0 in
      line (Fmt.str "Matrix %dx%d" (List.length rows) cols) (List.concat rows)

let rec dump_stmt buf indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  let line label = Buffer.add_string buf (Fmt.str "%s%s\n" pad label) in
  match s.sdesc with
  | Ast.Assign (l, e, _) ->
      (match l.lv_indices with
      | None -> line (Fmt.str "Assign %s" l.lv_name)
      | Some args ->
          line (Fmt.str "Assign %s(...)" l.lv_name);
          List.iter (dump_expr buf (indent + 2)) args);
      dump_expr buf (indent + 2) e
  | Ast.Multi_assign (ls, e, _) ->
      line
        (Fmt.str "Multi_assign [%s]"
           (String.concat ", " (List.map (fun l -> l.Ast.lv_name) ls)));
      List.iter
        (fun l ->
          Option.iter (List.iter (dump_expr buf (indent + 2))) l.Ast.lv_indices)
        ls;
      dump_expr buf (indent + 2) e
  | Ast.Expr (e, _) ->
      line "Expr";
      dump_expr buf (indent + 2) e
  | Ast.If (branches, els) ->
      List.iteri
        (fun i (c, b) ->
          line (if i = 0 then "If" else "Elseif");
          dump_expr buf (indent + 2) c;
          List.iter (dump_stmt buf (indent + 2)) b)
        branches;
      if els <> [] then begin
        line "Else";
        List.iter (dump_stmt buf (indent + 2)) els
      end
  | Ast.While (c, b) ->
      line "While";
      dump_expr buf (indent + 2) c;
      List.iter (dump_stmt buf (indent + 2)) b
  | Ast.For (v, e, b) ->
      line (Fmt.str "For %s" v);
      dump_expr buf (indent + 2) e;
      List.iter (dump_stmt buf (indent + 2)) b
  | Ast.Break -> line "Break"
  | Ast.Continue -> line "Continue"
  | Ast.Return -> line "Return"

let annotated_program_to_string (p : Ast.program) =
  let buf = Buffer.create 1024 in
  List.iter (dump_stmt buf 0) p.script;
  List.iter
    (fun (f : Ast.func) ->
      Buffer.add_string buf
        (Fmt.str "Function %s(%s) -> [%s]\n" f.fname
           (String.concat ", " f.params)
           (String.concat ", " f.returns));
      List.iter (dump_stmt buf 2) f.fbody)
    p.funcs;
  Buffer.contents buf
