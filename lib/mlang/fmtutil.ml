(* MATLAB fprintf-style formatting shared by the compiled run time and
   the reference interpreter: the conversions %d %i %f %g %e %s plus
   the \n and \t escapes, interpreted at run time as MATLAB does. *)

type arg = F of float | S of string

exception Format_error of string

let error fmt = Fmt.kstr (fun m -> raise (Format_error m)) fmt

let format (fmt : string) (args : arg list) : string =
  let buf = Buffer.create 64 in
  let args = ref args in
  let next_arg () =
    match !args with
    | a :: rest ->
        args := rest;
        a
    | [] -> error "fprintf: not enough arguments"
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '\\' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | c2 -> Buffer.add_char buf c2);
      i := !i + 2
    end
    else if c = '%' && !i + 1 < n then begin
      let j = ref (!i + 1) in
      while
        !j < n
        &&
        match fmt.[!j] with
        | '0' .. '9' | '.' | '-' | '+' | ' ' -> true
        | _ -> false
      do
        incr j
      done;
      if !j >= n then error "fprintf: incomplete conversion";
      let spec = String.sub fmt !i (!j - !i + 1) in
      (match fmt.[!j] with
      | '%' -> Buffer.add_char buf '%'
      | 'd' | 'i' -> (
          match next_arg () with
          | F f ->
              let spec = String.sub spec 0 (String.length spec - 1) ^ "d" in
              Buffer.add_string buf
                (Printf.sprintf
                   (Scanf.format_from_string spec "%d")
                   (int_of_float f))
          | S _ -> error "fprintf: %%d needs a number")
      | 'f' | 'g' | 'e' -> (
          match next_arg () with
          | F f ->
              Buffer.add_string buf
                (Printf.sprintf (Scanf.format_from_string spec "%f") f)
          | S _ -> error "fprintf: numeric conversion needs a number")
      | 's' -> (
          match next_arg () with
          | S s -> Buffer.add_string buf s
          | F f -> Buffer.add_string buf (Printf.sprintf "%g" f))
      | c2 -> error "fprintf: unsupported conversion %%%c" c2);
      i := !j + 1
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(* Rank-N rendering shared by both back ends: one matrix block per
   leading-axis slice, headed by its subscript, e.g. "A(2,:,:) =". *)
let format_tensor ?name ~(dims : int array) (dense : float array) : string =
  let n = Array.length dims in
  let rows = dims.(n - 2) and cols = dims.(n - 1) in
  let cell = rows * cols in
  let nslices = Array.fold_left ( * ) 1 (Array.sub dims 0 (n - 2)) in
  let buf = Buffer.create 256 in
  let base = match name with Some n when n <> "" -> n | _ -> "" in
  for s = 0 to nslices - 1 do
    (* decode the slice number into leading subscripts, slowest first *)
    let subs = Array.make (n - 2) 0 in
    let rem = ref s in
    for axis = n - 3 downto 0 do
      subs.(axis) <- !rem mod dims.(axis);
      rem := !rem / dims.(axis)
    done;
    let head =
      String.concat ","
        (Array.to_list (Array.map (fun i -> string_of_int (i + 1)) subs))
    in
    Buffer.add_string buf (Printf.sprintf "%s(%s,:,:) =\n" base head);
    for i = 0 to rows - 1 do
      Buffer.add_string buf "  ";
      for j = 0 to cols - 1 do
        Buffer.add_string buf
          (Printf.sprintf " %10.4f" dense.((s * cell) + (i * cols) + j))
      done;
      Buffer.add_char buf '\n'
    done
  done;
  Buffer.contents buf

(* Matrix rendering shared by both back ends (MATLAB-flavoured). *)
let format_matrix ?name ~rows ~cols (dense : float array) : string =
  let buf = Buffer.create 256 in
  (match name with
  | Some n when n <> "" -> Buffer.add_string buf (n ^ " =\n")
  | Some _ | None -> ());
  for i = 0 to rows - 1 do
    Buffer.add_string buf "  ";
    for j = 0 to cols - 1 do
      Buffer.add_string buf (Printf.sprintf " %10.4f" dense.((i * cols) + j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
