(* Abstract syntax for the MATLAB subset accepted by Otter.

   The expression tree is in Remora-style delayed-recursion form: the
   shape functor ['e expr_f] fixes what a node may contain without
   fixing what a subexpression is, and ['a annotated] ties the knot
   while threading an annotation of type ['a] through every node.  The
   compiler instantiates the annotation with [ann] — source position, a
   unique id, and mutable type/frame slots — so the analysis passes
   write their facts directly onto the tree instead of keeping parallel
   side tables keyed by node id.

   Copies made with [{ e with node = ... }] share the annotation record
   and therefore denote the *same* value as the original (SSA renaming
   and name resolution rely on this: a fact attached to either copy is
   visible through both).  Copies that denote a new computation must be
   rebuilt with [mk], which allocates a fresh annotation. *)

type binop =
  | Add
  | Sub
  | Mul (* matrix multiply *)
  | Div (* matrix right divide *)
  | Ldiv (* matrix left divide *)
  | Pow (* matrix power *)
  | Emul (* .* *)
  | Ediv (* ./ *)
  | Eldiv (* .\ *)
  | Epow (* .^ *)
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And (* & element-wise *)
  | Or (* | element-wise *)
  | Shortand (* && *)
  | Shortor (* || *)

type unop = Neg | Uplus | Not | Transpose (* .' *) | Ctranspose (* ' *)

(* One layer of expression structure; ['e] stands for a subexpression. *)
type 'e expr_f =
  | Num of float
  | Str of string
  | Ident of string (* unresolved name (variable or function) *)
  | Varref of string (* resolved variable reference *)
  | Colon (* bare ':' used as an index *)
  | End_marker (* 'end' used inside an index expression *)
  | Binop of binop * 'e * 'e
  | Unop of unop * 'e
  | Range of 'e * 'e option * 'e (* start : step? : stop *)
  | Apply of string * 'e list (* unresolved name(args) *)
  | Call of string * 'e list (* resolved function call *)
  | Index of string * 'e list (* resolved variable indexing *)
  | Matrix of 'e list list (* [e, e; e, e] rows of elements *)

(* The knot: an annotated tree whose every node carries an ['a]. *)
type 'a annotated = { ann : 'a; node : 'a annotated expr_f }

(* The compiler's concrete annotation.  [ty] is written by type
   inference (joined monotonically across fixpoint passes); [frame] is
   the number of leading (frame) axes a lower-ranked operand is lifted
   over at this node under the frame/cell broadcasting rule — 0 means
   no lift. *)
type ann = {
  pos : Source.pos;
  id : int;
  mutable ty : Ty.vt;
  mutable frame : int;
}

type expr = ann annotated

type lhs = {
  lv_name : string;
  lv_indices : expr list option; (* Some args for a(i,j) = ... *)
  lv_pos : Source.pos;
}

type stmt = { sdesc : sdesc; spos : Source.pos; sid : int }

and sdesc =
  | Assign of lhs * expr * bool (* display result (no ';')? *)
  | Multi_assign of lhs list * expr * bool (* [a, b] = f(...) *)
  | Expr of expr * bool
  | If of (expr * block) list * block (* branches, else-block *)
  | While of expr * block
  | For of string * expr * block
  | Break
  | Continue
  | Return

and block = stmt list

type func = {
  fname : string;
  params : string list;
  returns : string list;
  fbody : block;
}

type program = { script : block; funcs : func list }

let counter = ref 0

let fresh_id () =
  incr counter;
  !counter

let mk_ann ?(pos = Source.no_pos) () =
  { pos; id = fresh_id (); ty = Ty.Bottom; frame = 0 }

let mk ?pos node = { ann = mk_ann ?pos (); node }
let mk_stmt ?(pos = Source.no_pos) sdesc = { sdesc; spos = pos; sid = fresh_id () }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Ldiv -> "\\"
  | Pow -> "^"
  | Emul -> ".*"
  | Ediv -> "./"
  | Eldiv -> ".\\"
  | Epow -> ".^"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "~="
  | And -> "&"
  | Or -> "|"
  | Shortand -> "&&"
  | Shortor -> "||"

let unop_name = function
  | Neg -> "-"
  | Uplus -> "+"
  | Not -> "~"
  | Transpose -> ".'"
  | Ctranspose -> "'"

(* [is_elementwise op] holds for operators applied independently to each
   element of their (conformable) operands; these never require
   interprocessor communication on identically distributed matrices. *)
let is_elementwise = function
  | Add | Sub | Emul | Ediv | Eldiv | Epow | Lt | Le | Gt | Ge | Eq | Ne | And
  | Or ->
      true
  | Mul | Div | Ldiv | Pow | Shortand | Shortor -> false

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Ldiv | Pow | Emul | Ediv | Eldiv | Epow | And | Or
  | Shortand | Shortor ->
      false

(* Structural fold over all expressions of a block, used by analyses. *)
let rec iter_exprs_expr f e =
  f e;
  match e.node with
  | Num _ | Str _ | Ident _ | Varref _ | Colon | End_marker -> ()
  | Binop (_, a, b) ->
      iter_exprs_expr f a;
      iter_exprs_expr f b
  | Unop (_, a) -> iter_exprs_expr f a
  | Range (a, step, b) ->
      iter_exprs_expr f a;
      Option.iter (iter_exprs_expr f) step;
      iter_exprs_expr f b
  | Apply (_, args) | Call (_, args) | Index (_, args) ->
      List.iter (iter_exprs_expr f) args
  | Matrix rows -> List.iter (List.iter (iter_exprs_expr f)) rows

let rec iter_exprs_stmt f s =
  match s.sdesc with
  | Assign (lhs, e, _) ->
      Option.iter (List.iter (iter_exprs_expr f)) lhs.lv_indices;
      iter_exprs_expr f e
  | Multi_assign (lhss, e, _) ->
      List.iter
        (fun l -> Option.iter (List.iter (iter_exprs_expr f)) l.lv_indices)
        lhss;
      iter_exprs_expr f e
  | Expr (e, _) -> iter_exprs_expr f e
  | If (branches, els) ->
      List.iter
        (fun (c, b) ->
          iter_exprs_expr f c;
          List.iter (iter_exprs_stmt f) b)
        branches;
      List.iter (iter_exprs_stmt f) els
  | While (c, b) ->
      iter_exprs_expr f c;
      List.iter (iter_exprs_stmt f) b
  | For (_, e, b) ->
      iter_exprs_expr f e;
      List.iter (iter_exprs_stmt f) b
  | Break | Continue | Return -> ()

let iter_exprs f block = List.iter (iter_exprs_stmt f) block
