(* The type / rank / shape lattice of the Otter compiler (paper section 3,
   pass 3), extended beyond the paper with a rank-N tensor point.

   A variable has one of four base types -- literal (string), integer,
   real, complex -- a rank (scalar, matrix, or tensor; MATLAB vectors
   are matrices with one unit dimension) and, when it has matrix or
   tensor rank, a shape whose dimensions are compile-time constants
   where derivable and unknown (resolved at run time) otherwise.

   Tensors follow the Remora frame/cell decomposition: [Rtensor outer]
   carries the *leading* (frame) dimensions, and [shape] keeps the
   trailing rows-by-cols cell exactly as for a matrix.  The total rank
   of a tensor is 2 + length outer; the compiler front end today only
   builds rank-3 tensors (one frame axis), but the lattice and the
   runtime are N-d. *)

type base = Literal | Integer | Real | Complex
type dim = Dconst of int | Dunknown
type rank = Rscalar | Rmatrix | Rtensor of dim list (* leading (frame) dims *)
type shape = { rows : dim; cols : dim }
type t = { base : base; rank : rank; shape : shape }

(* Bottom is "no information yet": an unassigned SSA name or an
   yet-unvisited loop back edge. *)
type vt = Bottom | Known of t

let scalar_shape = { rows = Dconst 1; cols = Dconst 1 }
let unknown_shape = { rows = Dunknown; cols = Dunknown }
let scalar base = { base; rank = Rscalar; shape = scalar_shape }
let matrix ?(shape = unknown_shape) base = { base; rank = Rmatrix; shape }

let tensor ?(outer = [ Dunknown ]) ?(shape = unknown_shape) base =
  { base; rank = Rtensor outer; shape }

let int_scalar = scalar Integer
let real_scalar = scalar Real
let real_matrix = matrix Real

let base_le a b =
  let order = function Literal -> 0 | Integer -> 1 | Real -> 2 | Complex -> 3 in
  match (a, b) with
  | Literal, Literal -> true
  | Literal, _ | _, Literal -> false
  | _ -> order a <= order b

let join_base a b =
  match (a, b) with
  | Literal, x | x, Literal -> x (* literals never mix with numerics *)
  | _ -> if base_le a b then b else a

let join_dim a b =
  match (a, b) with
  | Dconst x, Dconst y when x = y -> Dconst x
  | _ -> Dunknown

let join_shape a b = { rows = join_dim a.rows b.rows; cols = join_dim a.cols b.cols }

(* Frame-dim lists of differing length have no common constant frame;
   join them to an all-unknown frame of the larger rank. *)
let join_outer a b =
  if List.length a = List.length b then List.map2 join_dim a b
  else List.map (fun _ -> Dunknown) (if List.length a > List.length b then a else b)

let join_rank a b =
  match (a, b) with
  | Rscalar, Rscalar -> Rscalar
  | Rtensor x, Rtensor y -> Rtensor (join_outer x y)
  | Rtensor x, _ | _, Rtensor x -> Rtensor (List.map (fun _ -> Dunknown) x)
  | _ -> Rmatrix

let join a b =
  {
    base = join_base a.base b.base;
    rank = join_rank a.rank b.rank;
    shape =
      (match (a.rank, b.rank) with
      | Rscalar, Rscalar -> scalar_shape
      | Rscalar, _ -> b.shape
      | _, Rscalar -> a.shape
      | _ -> join_shape a.shape b.shape);
  }

let join_vt a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Known x, Known y -> Known (join x y)

let equal_dim a b =
  match (a, b) with
  | Dconst x, Dconst y -> x = y
  | Dunknown, Dunknown -> true
  | Dconst _, Dunknown | Dunknown, Dconst _ -> false

let equal_rank a b =
  match (a, b) with
  | Rscalar, Rscalar | Rmatrix, Rmatrix -> true
  | Rtensor x, Rtensor y ->
      List.length x = List.length y && List.for_all2 equal_dim x y
  | _ -> false

let equal a b =
  a.base = b.base && equal_rank a.rank b.rank
  && equal_dim a.shape.rows b.shape.rows
  && equal_dim a.shape.cols b.shape.cols

let equal_vt a b =
  match (a, b) with
  | Bottom, Bottom -> true
  | Known x, Known y -> equal x y
  | Bottom, Known _ | Known _, Bottom -> false

let is_scalar t = t.rank = Rscalar
let is_numeric t = t.base <> Literal
let is_tensor t = match t.rank with Rtensor _ -> true | _ -> false

(* Total rank: 0 for scalars, 2 for matrices, 2 + frame axes for tensors. *)
let total_rank t =
  match t.rank with
  | Rscalar -> 0
  | Rmatrix -> 2
  | Rtensor outer -> 2 + List.length outer

(* Number of frame (leading) axes a lower-ranked cell operand is lifted
   over when broadcast against [t]. *)
let frame_axes t = match t.rank with Rtensor outer -> List.length outer | _ -> 0

(* A matrix known to be n-by-1 or 1-by-n. *)
let is_vector t =
  t.rank = Rmatrix && (t.shape.rows = Dconst 1 || t.shape.cols = Dconst 1)

let pp_base ppf b =
  Fmt.string ppf
    (match b with
    | Literal -> "literal"
    | Integer -> "integer"
    | Real -> "real"
    | Complex -> "complex")

let pp_dim ppf = function
  | Dconst n -> Fmt.int ppf n
  | Dunknown -> Fmt.string ppf "?"

let pp ppf t =
  match t.rank with
  | Rscalar -> Fmt.pf ppf "%a scalar" pp_base t.base
  | Rmatrix ->
      Fmt.pf ppf "%a matrix [%ax%a]" pp_base t.base pp_dim t.shape.rows pp_dim
        t.shape.cols
  | Rtensor outer ->
      Fmt.pf ppf "%a tensor [%ax%ax%a]" pp_base t.base
        (Fmt.list ~sep:(Fmt.any "x") pp_dim)
        outer pp_dim t.shape.rows pp_dim t.shape.cols

let pp_vt ppf = function
  | Bottom -> Fmt.string ppf "bottom"
  | Known t -> pp ppf t

let to_string t = Fmt.str "%a" pp t

(* Result type of an element-wise binary operation on conformable
   operands: scalar op matrix broadcasts, and under the frame/cell rule
   a scalar or cell-shaped matrix lifts over the frame of a tensor. *)
let elementwise_result op_base a b =
  let base = op_base a.base b.base in
  match (a.rank, b.rank) with
  | Rscalar, Rscalar -> scalar base
  | _, Rscalar -> { a with base }
  | Rscalar, _ -> { b with base }
  | Rmatrix, Rmatrix ->
      { base; rank = Rmatrix; shape = join_shape a.shape b.shape }
  | Rtensor _, Rmatrix ->
      (* frame broadcast: the matrix is the cell *)
      { a with base; shape = join_shape a.shape b.shape }
  | Rmatrix, Rtensor _ -> { b with base; shape = join_shape a.shape b.shape }
  | Rtensor x, Rtensor y ->
      { base; rank = Rtensor (join_outer x y); shape = join_shape a.shape b.shape }

let arith_base a b = join_base a b

(* Comparisons and logical operators yield 0/1 integer data. *)
let logical_base _ _ = Integer

(* Base type of a division: integer / integer is real in MATLAB. *)
let div_base a b =
  match join_base a b with
  | Literal -> Real
  | Integer -> Real
  | (Real | Complex) as t -> t

let transpose_shape s = { rows = s.cols; cols = s.rows }
