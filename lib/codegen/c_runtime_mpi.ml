(* The distributed-memory implementation of the run-time library:
   C with MPI calls, mirroring the simulator's OCaml run time
   operation for operation (row-contiguous matrix blocks, column
   blocks for row vectors, replicated scalars, owner-computes).

   This is the artifact the paper ships to a real parallel machine:
     mpicc -O2 prog.c otter_rt_common.c otter_rt_mpi.c -lm
   It cannot be executed in this repository's test environment (no MPI
   implementation is installed), but the test suite syntax-checks it
   against a stub mpi.h so the code stays buildable. *)

let mpi_impl =
  {|/* otter_rt_mpi.c -- distributed-memory implementation of the Otter
   run-time library over MPI (paper section 4). */
#include "otter_rt.h"
#include <mpi.h>

static int ml_rank_ = 0, ml_procs_ = 1;

void ML_init(int *argc, char ***argv) {
  MPI_Init(argc, argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &ml_rank_);
  MPI_Comm_size(MPI_COMM_WORLD, &ml_procs_);
}

static MPI_Op ml_op_min_nan_;
static MPI_Op ml_op_max_nan_;

void ML_finalize(void) {
  if (ml_op_min_nan_ != MPI_OP_NULL) MPI_Op_free(&ml_op_min_nan_);
  if (ml_op_max_nan_ != MPI_OP_NULL) MPI_Op_free(&ml_op_max_nan_);
  MPI_Finalize();
}
int ML_rank(void) { return ml_rank_; }
int ML_procs(void) { return ml_procs_; }

/* --- block distribution (BLOCK_LOW / BLOCK_HIGH) --------------------- */

static int ml_low(int r, int p, int n) { return (int)((long)r * n / p); }
static int ml_high(int r, int p, int n) { return (int)((long)(r + 1) * n / p); }

static int ml_owner_of(int p, int n, int i) {
  int r;
  if (n == 0) return 0;
  r = (int)(((long)(i + 1) * p - 1) / n);
  if (r > p - 1) r = p - 1;
  while (ml_low(r, p, n) > i) r--;
  while (ml_high(r, p, n) <= i) r++;
  return r;
}

/* --- MATRIX allocation ------------------------------------------------ */

void ML_reshape(MATRIX **m, int rows, int cols) {
  int axis = rows == 1 ? 1 : 0;
  int n = axis == 0 ? rows : cols;
  int low = ml_low(ml_rank_, ml_procs_, n);
  int count = ml_high(ml_rank_, ml_procs_, n) - low;
  long local = axis == 0 ? (long)count * cols : count;
  if (*m && (*m)->rows == rows && (*m)->cols == cols) return;
  if (*m) { free((*m)->data); free(*m); }
  *m = (MATRIX *)malloc(sizeof(MATRIX));
  (*m)->rows = rows; (*m)->cols = cols;
  (*m)->axis = axis; (*m)->low = low; (*m)->count = count;
  (*m)->data = (double *)calloc(local > 0 ? local : 1, sizeof(double));
}

void ML_free(MATRIX **m) {
  if (*m) { free((*m)->data); free(*m); *m = NULL; }
}

int ML_local_els(const MATRIX *m) {
  return m->axis == 0 ? m->count * m->cols : m->count;
}

void ML_copy(MATRIX **dst, const MATRIX *src) {
  ML_reshape(dst, src->rows, src->cols);
  memcpy((*dst)->data, src->data,
         sizeof(double) * (size_t)ML_local_els(src));
}

/* Global row-major linear index of local element i. */
static long ml_global_of_local(const MATRIX *m, long i) {
  return m->axis == 0 ? (long)m->low * m->cols + i : m->low + i;
}

double ML_eye_at(const MATRIX *m, int i) {
  long g = ml_global_of_local(m, i);
  return g / m->cols == g % m->cols ? 1.0 : 0.0;
}

/* Gather the whole matrix (row-major) on every process. */
static double *ml_to_dense(const MATRIX *m) {
  int p = ml_procs_, r;
  int n = m->axis == 0 ? m->rows : m->cols;
  int unit = m->axis == 0 ? m->cols : 1;
  int *counts = (int *)malloc(sizeof(int) * p);
  int *displs = (int *)malloc(sizeof(int) * p);
  double *full = (double *)malloc(sizeof(double) *
                                  ((size_t)m->rows * m->cols + 1));
  for (r = 0; r < p; r++) {
    counts[r] = (ml_high(r, p, n) - ml_low(r, p, n)) * unit;
    displs[r] = ml_low(r, p, n) * unit;
  }
  MPI_Allgatherv(m->data, ML_local_els(m), MPI_DOUBLE, full, counts, displs,
                 MPI_DOUBLE, MPI_COMM_WORLD);
  free(counts);
  free(displs);
  return full;
}

/* --- constructors ------------------------------------------------------ */

static void ml_fill(MATRIX *m, double (*f)(int, long), int seed) {
  long i;
  for (i = 0; i < ML_local_els(m); i++)
    m->data[i] = f(seed, ml_global_of_local(m, i));
}

static double ml_zero_at(int s, long i) { (void)s; (void)i; return 0.0; }
static double ml_one_at(int s, long i) { (void)s; (void)i; return 1.0; }

void ML_zeros(MATRIX **dst, int rows, int cols) {
  ML_reshape(dst, rows, cols);
  ml_fill(*dst, ml_zero_at, 0);
}

void ML_ones(MATRIX **dst, int rows, int cols) {
  ML_reshape(dst, rows, cols);
  ml_fill(*dst, ml_one_at, 0);
}

void ML_eye(MATRIX **dst, int rows, int cols) {
  long i;
  ML_zeros(dst, rows, cols);
  for (i = 0; i < ML_local_els(*dst); i++) {
    long g = ml_global_of_local(*dst, i);
    if (g / cols == g % cols) (*dst)->data[i] = 1.0;
  }
}

void ML_rand(MATRIX **dst, int rows, int cols) {
  int seed = ML_next_rand_seed();
  ML_reshape(dst, rows, cols);
  ml_fill(*dst, ML_uniform_elem, seed);
}

void ML_randn(MATRIX **dst, int rows, int cols) {
  int seed = ML_next_rand_seed();
  ML_reshape(dst, rows, cols);
  ml_fill(*dst, ML_normal_elem, seed);
}

void ML_linspace(MATRIX **dst, double a, double b, int n) {
  long i;
  double d = n > 1 ? (b - a) / (n - 1) : 0.0;
  ML_reshape(dst, 1, n);
  for (i = 0; i < ML_local_els(*dst); i++)
    (*dst)->data[i] = a + ml_global_of_local(*dst, i) * d;
}

static int ml_range_len(double lo, double step, double hi) {
  double raw;
  if (step == 0) return 0;
  raw = (hi - lo) / step + 1e-9;
  return raw < 0 ? 0 : (int)floor(raw) + 1;
}

void ML_range(MATRIX **dst, double lo, double step, double hi) {
  long i;
  int n = ml_range_len(lo, step, hi);
  ML_reshape(dst, 1, n);
  for (i = 0; i < ML_local_els(*dst); i++)
    (*dst)->data[i] = lo + ml_global_of_local(*dst, i) * step;
}

void ML_literal(MATRIX **dst, int rows, int cols, const double *elems) {
  long i;
  ML_reshape(dst, rows, cols);
  for (i = 0; i < ML_local_els(*dst); i++)
    (*dst)->data[i] = elems[ml_global_of_local(*dst, i)];
}

/* --- linear algebra ---------------------------------------------------- */

void ML_load(MATRIX **dst, const char *path) {
  int rows, cols;
  long i;
  double *data = ML_read_datafile(path, &rows, &cols);
  ML_reshape(dst, rows, cols);
  for (i = 0; i < ML_local_els(*dst); i++)
    (*dst)->data[i] = data[ml_global_of_local(*dst, i)];
  free(data);
}

void ML_matrix_multiply(const MATRIX *a, const MATRIX *b, MATRIX **dst) {
  int m = a->rows, k = a->cols, n = b->cols;
  MATRIX *c = NULL;
  if (a->cols != b->rows) ML_error("matmul: inner dimensions disagree");
  if (m > 1) {
    double *bf = ml_to_dense(b);
    int li, j, kk;
    ML_reshape(&c, m, n);
    for (li = 0; li < c->count; li++)
      for (j = 0; j < n; j++) {
        double acc = 0.0;
        for (kk = 0; kk < k; kk++)
          acc += a->data[(long)li * k + kk] * bf[(long)kk * n + j];
        c->data[(long)li * n + j] = acc;
      }
    free(bf);
  } else {
    /* (1 x k) * (k x n): partial sums over B's owned rows. */
    double *af = ml_to_dense(a);
    double *partial = (double *)calloc(n > 0 ? n : 1, sizeof(double));
    double *full = (double *)malloc(sizeof(double) * (n > 0 ? n : 1));
    int lr, j;
    if (b->axis == 0) {
      for (lr = 0; lr < b->count; lr++)
        for (j = 0; j < n; j++)
          partial[j] += af[b->low + lr] * b->data[(long)lr * n + j];
    } else {
      for (j = 0; j < b->count; j++)
        partial[b->low + j] = af[0] * b->data[j];
    }
    MPI_Allreduce(partial, full, n, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    ML_reshape(&c, 1, n);
    for (j = 0; j < c->count; j++) c->data[j] = full[c->low + j];
    free(af); free(partial); free(full);
  }
  ML_free(dst);
  *dst = c;
}

void ML_matmul_t(const MATRIX *a, const MATRIX *b, MATRIX **dst) {
  if (a->rows != b->rows) ML_error("matmul_t: common dimensions disagree");
  if (a->rows == 1) {
    /* row-vector A: the transpose is local, fall back to matmul */
    MATRIX *at = NULL;
    ML_transpose(a, &at);
    ML_matrix_multiply(at, b, dst);
    ML_free(&at);
  } else {
    /* A and B share the row distribution over the common dimension, so
       each rank forms a full m x k partial product from its owned rows
       and one allreduce finishes -- no redistribution, no gather. */
    int m = a->cols, k = b->cols, lr, ja, jb;
    long mk = (long)m * k, i;
    double *partial = (double *)calloc(mk > 0 ? mk : 1, sizeof(double));
    double *full = (double *)malloc(sizeof(double) * (mk > 0 ? mk : 1));
    MATRIX *c = NULL;
    for (lr = 0; lr < a->count; lr++)
      for (ja = 0; ja < m; ja++) {
        double av = a->data[(long)lr * m + ja];
        for (jb = 0; jb < k; jb++)
          partial[(long)ja * k + jb] += av * b->data[(long)lr * k + jb];
      }
    MPI_Allreduce(partial, full, (int)mk, MPI_DOUBLE, MPI_SUM,
                  MPI_COMM_WORLD);
    ML_reshape(&c, m, k);
    for (i = 0; i < ML_local_els(c); i++)
      c->data[i] = full[ml_global_of_local(c, i)];
    free(partial); free(full);
    ML_free(dst);
    *dst = c;
  }
}

double ML_dot(const MATRIX *a, const MATRIX *b) {
  long i;
  double local = 0.0, global = 0.0;
  if ((long)a->rows * a->cols != (long)b->rows * b->cols)
    ML_error("dot: length mismatch");
  for (i = 0; i < ML_local_els(a); i++) local += a->data[i] * b->data[i];
  MPI_Allreduce(&local, &global, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  return global;
}

void ML_transpose(const MATRIX *a, MATRIX **dst) {
  MATRIX *c = NULL;
  if (a->rows == 1 || a->cols == 1) {
    /* vector transpose: identical element blocks, no communication */
    ML_reshape(&c, a->cols, a->rows);
    memcpy(c->data, a->data, sizeof(double) * (size_t)ML_local_els(a));
  } else {
    /* all-to-all block exchange (O(rows*cols/P) per process) */
    double *dense = ml_to_dense(a); /* simple, correct fallback */
    long i;
    ML_reshape(&c, a->cols, a->rows);
    for (i = 0; i < ML_local_els(c); i++) {
      long g = ml_global_of_local(c, i); /* row-major in the transpose */
      long ti = g / a->rows, tj = g % a->rows;
      c->data[i] = dense[tj * a->cols + ti];
    }
    free(dense);
  }
  ML_free(dst);
  *dst = c;
}

void ML_diag(const MATRIX *a, MATRIX **dst) {
  /* both directions redistribute: gather the source, fill locally */
  double *dense = ml_to_dense(a);
  MATRIX *c = NULL;
  long i;
  if (a->rows == 1 || a->cols == 1) {
    int n = a->rows * a->cols;
    ML_reshape(&c, n, n);
    for (i = 0; i < ML_local_els(c); i++) {
      long g = ml_global_of_local(c, i);
      long gi = g / n, gj = g % n;
      c->data[i] = (gi == gj) ? dense[gi] : 0.0;
    }
  } else {
    int n = a->rows < a->cols ? a->rows : a->cols;
    ML_reshape(&c, n, 1);
    for (i = 0; i < ML_local_els(c); i++) {
      long g = ml_global_of_local(c, i);
      c->data[i] = dense[g * a->cols + g];
    }
  }
  free(dense);
  ML_free(dst);
  *dst = c;
}

/* The result is row-distributed for m > 1 but column-distributed when
   m = 1 (and u's element may then live on another rank), so fill
   through global indices from replicated operands. */
void ML_outer(const MATRIX *u, const MATRIX *v, MATRIX **dst) {
  int m = u->rows * u->cols, n = v->rows * v->cols;
  double *uf = ml_to_dense(u);
  double *vf = ml_to_dense(v);
  MATRIX *c = NULL;
  long k, nl;
  ML_reshape(&c, m, n);
  nl = ML_local_els(c);
  for (k = 0; k < nl; k++) {
    long g = ml_global_of_local(c, k);
    c->data[k] = uf[g / n] * vf[g % n];
  }
  free(uf);
  free(vf);
  ML_free(dst);
  *dst = c;
}

/* --- reductions --------------------------------------------------------- */

static double ml_red_init(ML_RED op) {
  switch (op) {
  case ML_PROD: case ML_ALL: return 1.0;
  case ML_MIN: case ML_MAX: return NAN;
  default: return 0.0;
  }
}

/* Both the local pass and the cross-rank combine skip NaNs (MATLAB
   min/max semantics), starting from a NaN identity: a rank that owns
   no non-NaN element contributes NaN, and min/max of an all-NaN
   distributed vector is NaN -- exactly what the interpreter, the
   simulator VM and the sequential C run time compute.  The cross-rank
   combine therefore cannot be the builtin MPI_MIN/MPI_MAX (neither is
   NaN-aware); ml_mpi_op creates a custom commutative MPI_Op wrapping
   ml_red_comb instead. */
static double ml_red_comb(ML_RED op, double a, double b) {
  switch (op) {
  case ML_SUM: case ML_MEAN: return a + b;
  case ML_PROD: return a * b;
  case ML_MIN:
    if (isnan(b)) return a;
    if (isnan(a)) return b;
    return a < b ? a : b;
  case ML_MAX:
    if (isnan(b)) return a;
    if (isnan(a)) return b;
    return a > b ? a : b;
  case ML_ANY: return (a != 0 || b != 0) ? 1.0 : 0.0;
  case ML_ALL: return (a != 0 && b != 0) ? 1.0 : 0.0;
  }
  return 0.0;
}

static void ml_op_min_fn(void *in, void *inout, int *len, MPI_Datatype *dt) {
  int i;
  (void)dt;
  for (i = 0; i < *len; i++)
    ((double *)inout)[i] =
        ml_red_comb(ML_MIN, ((double *)inout)[i], ((double *)in)[i]);
}

static void ml_op_max_fn(void *in, void *inout, int *len, MPI_Datatype *dt) {
  int i;
  (void)dt;
  for (i = 0; i < *len; i++)
    ((double *)inout)[i] =
        ml_red_comb(ML_MAX, ((double *)inout)[i], ((double *)in)[i]);
}

static MPI_Op ml_op_min_nan_ = MPI_OP_NULL;
static MPI_Op ml_op_max_nan_ = MPI_OP_NULL;

static MPI_Op ml_mpi_op(ML_RED op) {
  switch (op) {
  case ML_SUM: case ML_MEAN: return MPI_SUM;
  case ML_PROD: return MPI_PROD;
  case ML_MIN:
    if (ml_op_min_nan_ == MPI_OP_NULL)
      MPI_Op_create(ml_op_min_fn, 1, &ml_op_min_nan_);
    return ml_op_min_nan_;
  case ML_MAX:
    if (ml_op_max_nan_ == MPI_OP_NULL)
      MPI_Op_create(ml_op_max_fn, 1, &ml_op_max_nan_);
    return ml_op_max_nan_;
  /* ANY/ALL only ever combine 0/1 values; the builtins are exact. */
  case ML_ALL: return MPI_MIN;
  case ML_ANY: return MPI_MAX;
  }
  return MPI_SUM;
}

double ML_reduce_all(ML_RED op, const MATRIX *m) {
  long i;
  double local = ml_red_init(op), global;
  for (i = 0; i < ML_local_els(m); i++)
    local = ml_red_comb(op, local, m->data[i]);
  MPI_Allreduce(&local, &global, 1, MPI_DOUBLE, ml_mpi_op(op), MPI_COMM_WORLD);
  if (op == ML_MEAN) global /= (double)m->rows * m->cols;
  return global;
}

void ML_reduce_cols(ML_RED op, const MATRIX *m, MATRIX **dst) {
  int n = m->cols, li, j;
  double *partial = (double *)malloc(sizeof(double) * (n > 0 ? n : 1));
  double *full = (double *)malloc(sizeof(double) * (n > 0 ? n : 1));
  MATRIX *c = NULL;
  for (j = 0; j < n; j++) partial[j] = ml_red_init(op);
  for (li = 0; li < m->count; li++)
    for (j = 0; j < n; j++)
      partial[j] = ml_red_comb(op, partial[j], m->data[(long)li * n + j]);
  MPI_Allreduce(partial, full, n, MPI_DOUBLE, ml_mpi_op(op), MPI_COMM_WORLD);
  ML_reshape(&c, 1, n);
  for (j = 0; j < c->count; j++) {
    c->data[j] = full[c->low + j];
    if (op == ML_MEAN) c->data[j] /= (double)m->rows;
  }
  free(partial); free(full);
  ML_free(dst);
  *dst = c;
}

double ML_norm(const MATRIX *m) { return sqrt(ML_dot(m, m)); }

/* Every slot is sum-combining, so the local partials travel in a single
   vector allreduce; mean's divide and norm's sqrt are replicated local
   arithmetic after the combine.  Slot values are bit-identical to the
   unfused operations. */
void ML_reduce_fused(int n, const int *kind, const MATRIX **ma,
                     const MATRIX **mb, double *out) {
  double *partial = (double *)malloc(sizeof(double) * (n > 0 ? n : 1));
  long i;
  int k;
  for (k = 0; k < n; k++) {
    const MATRIX *m = ma[k];
    double acc = 0.0;
    switch ((ML_FUSE)kind[k]) {
    case ML_FUSE_SUM: case ML_FUSE_MEAN:
      for (i = 0; i < ML_local_els(m); i++) acc += m->data[i];
      break;
    case ML_FUSE_DOT:
      if ((long)m->rows * m->cols != (long)mb[k]->rows * mb[k]->cols)
        ML_error("dot: length mismatch");
      for (i = 0; i < ML_local_els(m); i++)
        acc += m->data[i] * mb[k]->data[i];
      break;
    case ML_FUSE_NORM:
      for (i = 0; i < ML_local_els(m); i++) acc += m->data[i] * m->data[i];
      break;
    }
    partial[k] = acc;
  }
  MPI_Allreduce(partial, out, n, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  for (k = 0; k < n; k++) {
    if (kind[k] == ML_FUSE_MEAN)
      out[k] /= (double)ma[k]->rows * ma[k]->cols;
    else if (kind[k] == ML_FUSE_NORM)
      out[k] = sqrt(out[k]);
  }
  free(partial);
}

void ML_cumulative(int is_prod, const MATRIX *v, MATRIX **dst) {
  long i, n = ML_local_els(v);
  double local = is_prod ? 1.0 : 0.0, offset = is_prod ? 1.0 : 0.0;
  double acc;
  MATRIX *c = NULL;
  if (v->rows > 1 && v->cols > 1)
    ML_error("cumsum/cumprod of a full matrix is not supported");
  ML_reshape(&c, v->rows, v->cols);
  for (i = 0; i < n; i++)
    local = is_prod ? local * v->data[i] : local + v->data[i];
  MPI_Exscan(&local, &offset, 1, MPI_DOUBLE, is_prod ? MPI_PROD : MPI_SUM,
             MPI_COMM_WORLD);
  if (ml_rank_ == 0) offset = is_prod ? 1.0 : 0.0;
  acc = offset;
  for (i = 0; i < n; i++) {
    acc = is_prod ? acc * v->data[i] : acc + v->data[i];
    c->data[i] = acc;
  }
  ML_free(dst);
  *dst = c;
}

double ML_reduce_index(ML_RED op, const MATRIX *v, double *index_out) {
  long i, n = ML_local_els(v);
  struct { double value; int loc; } inout, result;
  if (v->rows > 1 && v->cols > 1)
    ML_error("[m, i] = min/max of a full matrix is not supported");
  inout.value = op == ML_MIN ? INFINITY : -INFINITY;
  inout.loc = 0x7fffffff; /* empty local block loses every comparison */
  for (i = 0; i < n; i++) {
    double x = v->data[i];
    if (!isnan(x) &&
        (op == ML_MIN ? x < inout.value : x > inout.value)) {
      inout.value = x;
      inout.loc = (int)ml_global_of_local(v, i);
    }
  }
  MPI_Allreduce(&inout, &result, 1, MPI_DOUBLE_INT,
                op == ML_MIN ? MPI_MINLOC : MPI_MAXLOC, MPI_COMM_WORLD);
  *index_out = (double)(result.loc + 1);
  return result.value;
}

static const double *ml_sort_keys;

static int ml_sort_cmp(const void *pa, const void *pb) {
  int a = *(const int *)pa, b = *(const int *)pb;
  int na = isnan(ml_sort_keys[a]), nb = isnan(ml_sort_keys[b]);
  if (na || nb) {                /* MATLAB: NaNs sort to the end */
    if (na && nb) return a - b;
    return na ? 1 : -1;
  }
  if (ml_sort_keys[a] < ml_sort_keys[b]) return -1;
  if (ml_sort_keys[a] > ml_sort_keys[b]) return 1;
  return a - b;
}

void ML_sort(const MATRIX *v, MATRIX **sorted, MATRIX **perm) {
  long n = (long)v->rows * v->cols, i;
  double *dense = ml_to_dense(v);
  int *order = (int *)malloc(sizeof(int) * (n > 0 ? n : 1));
  MATRIX *s = NULL, *p = NULL;
  if (v->rows > 1 && v->cols > 1)
    ML_error("sort of a full matrix is not supported");
  for (i = 0; i < n; i++) order[i] = (int)i;
  ml_sort_keys = dense;
  qsort(order, (size_t)n, sizeof(int), ml_sort_cmp);
  ML_reshape(&s, v->rows, v->cols);
  for (i = 0; i < ML_local_els(s); i++)
    s->data[i] = dense[order[ml_global_of_local(s, i)]];
  ML_free(sorted);
  *sorted = s;
  if (perm) {
    ML_reshape(&p, v->rows, v->cols);
    for (i = 0; i < ML_local_els(p); i++)
      p->data[i] = (double)(order[ml_global_of_local(p, i)] + 1);
    ML_free(perm);
    *perm = p;
  }
  free(order);
  free(dense);
}

double ML_trapz(const MATRIX *x, const MATRIX *y) {
  long n = (long)y->rows * y->cols;
  int low = y->low, count = y->count, high = y->low + y->count;
  double boundary[2] = {0, 0};
  double local = 0.0, global = 0.0;
  long i;
  MPI_Status st;
  if (n < 2) return 0.0;
  /* ship the first sample(s) to the owner of index low-1 */
  if (count > 0 && low > 0) {
    double payload[2];
    payload[0] = y->data[0];
    payload[1] = x ? x->data[0] : 0.0;
    MPI_Send(payload, 2, MPI_DOUBLE,
             ml_owner_of(ml_procs_, (int)n, low - 1), 71, MPI_COMM_WORLD);
  }
  if (count > 0 && high < n)
    MPI_Recv(boundary, 2, MPI_DOUBLE,
             ml_owner_of(ml_procs_, (int)n, high), 71, MPI_COMM_WORLD, &st);
  for (i = low; i <= high - 1 && i <= n - 2; i++) {
    double y0 = y->data[i - low];
    double y1 = i + 1 < high ? y->data[i + 1 - low] : boundary[0];
    double dx;
    if (x) {
      double x0 = x->data[i - low];
      double x1 = i + 1 < high ? x->data[i + 1 - low] : boundary[1];
      dx = x1 - x0;
    } else
      dx = 1.0;
    local += dx * (y0 + y1) * 0.5;
  }
  MPI_Allreduce(&local, &global, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  return global;
}

void ML_circshift(const MATRIX *m, int k, MATRIX **dst) {
  long n = (long)m->rows * m->cols, i;
  double *dense = ml_to_dense(m);
  MATRIX *c = NULL;
  ML_reshape(&c, m->rows, m->cols);
  if (n > 0) {
    long s = ((k % n) + n) % n;
    for (i = 0; i < ML_local_els(c); i++) {
      long g = ml_global_of_local(c, i);
      c->data[i] = dense[((g - s) % n + n) % n];
    }
  }
  free(dense);
  ML_free(dst);
  *dst = c;
}

/* --- sections ----------------------------------------------------------- */

static int ml_sel_count(ML_SEL s, int extent) {
  switch (s.kind) {
  case 0: return extent;
  case 1: return 1;
  case 2: return ml_range_len(s.lo, s.step, s.hi);
  default: return s.vec->rows * s.vec->cols;
  }
}

static int ml_sel_get(ML_SEL s, const double *vec_dense, int extent, int k) {
  int i;
  switch (s.kind) {
  case 0: i = k; break;
  case 1: i = (int)s.lo - 1; break;
  case 2: i = (int)(s.lo + k * s.step) - 1; break;
  default: i = (int)vec_dense[k] - 1; break;
  }
  if (i < 0 || i >= extent) ML_error("index out of bounds");
  return i;
}

void ML_section(const MATRIX *src, ML_SEL s1, ML_SEL s2, int nsel,
                MATRIX **dst) {
  double *dense = ml_to_dense(src);
  double *v1 = s1.kind == 3 ? ml_to_dense(s1.vec) : NULL;
  double *v2 = (nsel > 1 && s2.kind == 3) ? ml_to_dense(s2.vec) : NULL;
  MATRIX *c = NULL;
  long i;
  if (nsel == 1) {
    int n = src->rows * src->cols;
    int len = ml_sel_count(s1, n);
    int rows = src->cols == 1 ? len : 1, cols = src->cols == 1 ? 1 : len;
    if (src->rows > 1 && src->cols > 1)
      ML_error("linear sections of a full matrix are not supported");
    ML_reshape(&c, rows, cols);
    for (i = 0; i < ML_local_els(c); i++)
      c->data[i] = dense[ml_sel_get(s1, v1, n, (int)ml_global_of_local(c, i))];
  } else {
    int nr = ml_sel_count(s1, src->rows), nc = ml_sel_count(s2, src->cols);
    ML_reshape(&c, nr, nc);
    for (i = 0; i < ML_local_els(c); i++) {
      long g = ml_global_of_local(c, i);
      int ri = ml_sel_get(s1, v1, src->rows, (int)(g / nc));
      int rj = ml_sel_get(s2, v2, src->cols, (int)(g % nc));
      c->data[i] = dense[(long)ri * src->cols + rj];
    }
  }
  free(dense);
  if (v1) free(v1);
  if (v2) free(v2);
  ML_free(dst);
  *dst = c;
}

void ML_set_section(MATRIX *dst, ML_SEL s1, ML_SEL s2, int nsel,
                    const MATRIX *src, double fill) {
  double *sdense = src ? ml_to_dense(src) : NULL;
  double *v1 = s1.kind == 3 ? ml_to_dense(s1.vec) : NULL;
  double *v2 = (nsel > 1 && s2.kind == 3) ? ml_to_dense(s2.vec) : NULL;
  if (nsel == 1) {
    long n = (long)dst->rows * dst->cols;
    int len = ml_sel_count(s1, (int)n), k;
    if (dst->rows > 1 && dst->cols > 1)
      ML_error("linear section assignment on a full matrix is not supported");
    if (src && (long)src->rows * src->cols != len)
      ML_error("section assignment size mismatch");
    for (k = 0; k < len; k++) {
      int g = ml_sel_get(s1, v1, (int)n, k);
      int i = dst->cols == 1 ? g : 0, j = dst->cols == 1 ? 0 : g;
      if (ML_owner(dst, i, j))
        *ML_realaddr2(dst, i, j) = src ? sdense[k] : fill;
    }
  } else {
    int nr = ml_sel_count(s1, dst->rows), nc = ml_sel_count(s2, dst->cols);
    int a, b;
    if (src && (long)src->rows * src->cols != (long)nr * nc)
      ML_error("section assignment size mismatch");
    for (a = 0; a < nr; a++)
      for (b = 0; b < nc; b++) {
        int i = ml_sel_get(s1, v1, dst->rows, a);
        int j = ml_sel_get(s2, v2, dst->cols, b);
        if (ML_owner(dst, i, j))
          *ML_realaddr2(dst, i, j) = src ? sdense[(long)a * nc + b] : fill;
      }
  }
  if (sdense) free(sdense);
  if (v1) free(v1);
  if (v2) free(v2);
}

void ML_concat(MATRIX **dst, int grid_rows, int grid_cols,
               const MATRIX **parts) {
  /* MATLAB drops empty operands from a literal: empty blocks are
     skipped, and a grid row of nothing but empties adds no rows. */
  int total_rows = 0, total_cols = -1, gi, gj;
  long i;
  double *full;
  MATRIX *c = NULL;
  for (gi = 0; gi < grid_rows; gi++) {
    int h = -1, w = 0;
    for (gj = 0; gj < grid_cols; gj++) {
      const MATRIX *b = parts[gi * grid_cols + gj];
      if (b->rows * b->cols == 0) continue;
      if (h < 0) h = b->rows;
      else if (b->rows != h)
        ML_error("inconsistent row counts in matrix literal");
      w += b->cols;
    }
    if (h < 0) continue; /* every block in this row was empty */
    if (total_cols < 0) total_cols = w;
    else if (w != total_cols)
      ML_error("inconsistent column counts in matrix literal");
    total_rows += h;
  }
  if (total_cols < 0) total_cols = 0;
  full = (double *)calloc((size_t)total_rows * total_cols + 1, sizeof(double));
  {
    int roff = 0;
    for (gi = 0; gi < grid_rows; gi++) {
      int h = 0, coff = 0;
      for (gj = 0; gj < grid_cols; gj++) {
        const MATRIX *b = parts[gi * grid_cols + gj];
        double *bd;
        int r2, c2;
        if (b->rows * b->cols == 0) continue;
        bd = ml_to_dense(b);
        h = b->rows;
        for (r2 = 0; r2 < b->rows; r2++)
          for (c2 = 0; c2 < b->cols; c2++)
            full[(long)(roff + r2) * total_cols + coff + c2] =
                bd[(long)r2 * b->cols + c2];
        free(bd);
        coff += b->cols;
      }
      roff += h;
    }
  }
  ML_reshape(&c, total_rows, total_cols);
  for (i = 0; i < ML_local_els(c); i++)
    c->data[i] = full[ml_global_of_local(c, i)];
  free(full);
  ML_free(dst);
  *dst = c;
}

/* --- element access ----------------------------------------------------- */

int ML_owner(const MATRIX *m, int i, int j) {
  if (m->axis == 0) return i >= m->low && i < m->low + m->count;
  return j >= m->low && j < m->low + m->count;
}

int ML_owner_linear(const MATRIX *m, int g) {
  if (m->rows == 1) return ML_owner(m, 0, g);
  if (m->cols == 1) return ML_owner(m, g, 0);
  return ML_owner(m, g % m->rows, g / m->rows);
}

double *ML_realaddr2(MATRIX *m, int i, int j) {
  if (i < 0 || i >= m->rows || j < 0 || j >= m->cols)
    ML_error("index out of bounds");
  if (m->axis == 0) return &m->data[(long)(i - m->low) * m->cols + j];
  return &m->data[j - m->low];
}

double *ML_realaddr1(MATRIX *m, int g) {
  if (g < 0 || g >= m->rows * m->cols) ML_error("index out of bounds");
  if (m->rows == 1) return ML_realaddr2(m, 0, g);
  if (m->cols == 1) return ML_realaddr2(m, g, 0);
  return ML_realaddr2(m, g % m->rows, g / m->rows);
}

double ML_broadcast(const MATRIX *m, int i, int j) {
  double v = 0.0;
  int root;
  if (i < 0 || i >= m->rows || j < 0 || j >= m->cols)
    ML_error("index out of bounds");
  root = m->axis == 0 ? ml_owner_of(ml_procs_, m->rows, i)
                      : ml_owner_of(ml_procs_, m->cols, j);
  if (ML_owner(m, i, j)) v = *ML_realaddr2((MATRIX *)m, i, j);
  MPI_Bcast(&v, 1, MPI_DOUBLE, root, MPI_COMM_WORLD);
  return v;
}

double ML_broadcast_linear(const MATRIX *m, int g) {
  if (g < 0 || g >= m->rows * m->cols) ML_error("index out of bounds");
  if (m->rows == 1) return ML_broadcast(m, 0, g);
  if (m->cols == 1) return ML_broadcast(m, g, 0);
  return ML_broadcast(m, g % m->rows, g / m->rows);
}

/* One collective replicates the whole batch: each owner deposits its
   values into a zero-filled vector and a sum allreduce combines. */
void ML_broadcast_batch(const MATRIX *m, int n, const int *ri,
                        const int *ci, double *out) {
  double *partial = (double *)calloc(n > 0 ? n : 1, sizeof(double));
  int k;
  for (k = 0; k < n; k++) {
    int i = ri[k], j = ci[k];
    if (i < 0) {
      int g = ci[k];
      if (g < 0 || g >= m->rows * m->cols) ML_error("index out of bounds");
      if (m->rows == 1) { i = 0; j = g; }
      else if (m->cols == 1) { i = g; j = 0; }
      else { i = g % m->rows; j = g / m->rows; }
    } else if (i >= m->rows || j < 0 || j >= m->cols)
      ML_error("index out of bounds");
    if (ML_owner(m, i, j)) partial[k] = *ML_realaddr2((MATRIX *)m, i, j);
  }
  MPI_Allreduce(partial, out, n, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  free(partial);
}

/* --- output ------------------------------------------------------------- */

void ML_print_matrix(const char *name, const MATRIX *m) {
  double *dense = ml_to_dense(m);
  if (ml_rank_ == 0) {
    int i, j;
    if (name && name[0]) printf("%s =\n", name);
    for (i = 0; i < m->rows; i++) {
      printf("  ");
      for (j = 0; j < m->cols; j++)
        printf(" %10.4f", dense[(long)i * m->cols + j]);
      printf("\n");
    }
  }
  free(dense);
}
|}
