(* Pass 7: emit the SPMD IR as a C program with run-time library calls,
   in the style of the paper's section 3 examples (ML_matrix_multiply,
   ML_broadcast, owner-computes guards, 0-based index adjustment).

   The same source compiles against either flavour of the run-time
   library: [C_runtime.seq_impl] for a single CPU without MPI (what the
   integration tests execute) or the MPI implementation for a real
   distributed-memory machine. *)

module Ty = Analysis.Ty

let c_keywords =
  [
    "auto"; "break"; "case"; "char"; "const"; "continue"; "default"; "do";
    "double"; "else"; "enum"; "extern"; "float"; "for"; "goto"; "if"; "int";
    "long"; "register"; "return"; "short"; "signed"; "sizeof"; "static";
    "struct"; "switch"; "typedef"; "union"; "unsigned"; "void"; "volatile";
    "while"; "main"; "argc"; "argv";
  ]

let mangle name =
  let name = String.map (fun c -> if c = '@' then '_' else c) name in
  if List.mem name c_keywords then name ^ "_" else name

let c_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

type scope = { types : (string, Ty.t) Hashtbl.t }

let scope_of vars =
  let types = Hashtbl.create 32 in
  List.iter (fun (v, t) -> Hashtbl.replace types v t) vars;
  { types }

let is_matrix_var sc v =
  match Hashtbl.find_opt sc.types v with
  | Some t -> t.Ty.rank = Ty.Rmatrix
  | None -> false

(* Scalar variables of the Literal base type hold character strings and
   are declared [const char *] rather than [double]. *)
let is_str_var sc v =
  match Hashtbl.find_opt sc.types v with
  | Some t -> t.Ty.rank = Ty.Rscalar && t.Ty.base = Ty.Literal
  | None -> false

let scalar_call_name = function
  | "abs" -> "fabs"
  | "mod" -> "ML_mod"
  | "rem" -> "ML_rem"
  | "sign" -> "ML_sign"
  | "fix" -> "ML_fix"
  | "log2" -> "ML_log2"
  | "round" -> "ML_round"
  | "min" -> "ML_min2"
  | "max" -> "ML_max2"
  | "power" | "pow" -> "pow"
  | n -> n

(* --- expressions -------------------------------------------------------- *)

let rec sexpr_c (s : Spmd.Ir.sexpr) : string =
  match s with
  | Spmd.Ir.Sconst f -> float_lit f
  | Spmd.Ir.Sstr str -> Printf.sprintf "\"%s\"" (c_escape str)
  | Spmd.Ir.Svar v -> mangle v
  | Spmd.Ir.Sbin (op, a, b) -> binop_c op (sexpr_c a) (sexpr_c b)
  | Spmd.Ir.Sneg a -> Printf.sprintf "(-%s)" (sexpr_c a)
  | Spmd.Ir.Snot a -> Printf.sprintf "((double)(%s == 0))" (sexpr_c a)
  | Spmd.Ir.Scall ("double", [ a ]) -> sexpr_c a
  | Spmd.Ir.Scall (name, args) ->
      Printf.sprintf "%s(%s)" (scalar_call_name name)
        (String.concat ", " (List.map sexpr_c args))
  | Spmd.Ir.Sdim (v, 0) -> Printf.sprintf "ML_numel(%s)" (mangle v)
  | Spmd.Ir.Sdim (v, 1) -> Printf.sprintf "((double)%s->rows)" (mangle v)
  | Spmd.Ir.Sdim (v, 2) -> Printf.sprintf "((double)%s->cols)" (mangle v)
  | Spmd.Ir.Sdim (v, _) -> Printf.sprintf "ML_length(%s)" (mangle v)

and binop_c (op : Mlang.Ast.binop) a b =
  let cmp c = Printf.sprintf "((double)(%s %s %s))" a c b in
  match op with
  | Mlang.Ast.Add -> Printf.sprintf "(%s + %s)" a b
  | Mlang.Ast.Sub -> Printf.sprintf "(%s - %s)" a b
  | Mlang.Ast.Mul | Mlang.Ast.Emul -> Printf.sprintf "(%s * %s)" a b
  | Mlang.Ast.Div | Mlang.Ast.Ediv -> Printf.sprintf "(%s / %s)" a b
  | Mlang.Ast.Ldiv | Mlang.Ast.Eldiv -> Printf.sprintf "(%s / %s)" b a
  | Mlang.Ast.Pow | Mlang.Ast.Epow -> Printf.sprintf "pow(%s, %s)" a b
  | Mlang.Ast.Lt -> cmp "<"
  | Mlang.Ast.Le -> cmp "<="
  | Mlang.Ast.Gt -> cmp ">"
  | Mlang.Ast.Ge -> cmp ">="
  | Mlang.Ast.Eq -> cmp "=="
  | Mlang.Ast.Ne -> cmp "!="
  | Mlang.Ast.And | Mlang.Ast.Shortand ->
      Printf.sprintf "((double)((%s != 0) && (%s != 0)))" a b
  | Mlang.Ast.Or | Mlang.Ast.Shortor ->
      Printf.sprintf "((double)((%s != 0) || (%s != 0)))" a b

(* Element expressions: scalar subtrees are hoisted into ML_s<k> consts
   emitted just before the loop. *)
let eexpr_c ~(model : string) (e : Spmd.Ir.eexpr) :
    (string * string) list * string =
  let hoisted = ref [] in
  let count = ref 0 in
  let rec go = function
    | Spmd.Ir.Emat v -> Printf.sprintf "%s->data[ML_i]" (mangle v)
    | Spmd.Ir.Eeye -> Printf.sprintf "ML_eye_at(%s, ML_i)" (mangle model)
    | Spmd.Ir.Escalar s ->
        incr count;
        let name = Printf.sprintf "ML_s%d" !count in
        hoisted := (name, sexpr_c s) :: !hoisted;
        name
    | Spmd.Ir.Ebin (op, a, b) -> binop_c op (go a) (go b)
    | Spmd.Ir.Eneg a -> Printf.sprintf "(-%s)" (go a)
    | Spmd.Ir.Enot a -> Printf.sprintf "((double)(%s == 0))" (go a)
    | Spmd.Ir.Ecall1 ("double", a) -> go a
    | Spmd.Ir.Ecall1 (name, a) ->
        Printf.sprintf "%s(%s)" (scalar_call_name name) (go a)
    | Spmd.Ir.Ecall2 (name, a, b) ->
        Printf.sprintf "%s(%s, %s)" (scalar_call_name name) (go a) (go b)
  in
  let body = go e in
  (List.rev !hoisted, body)

let red_c = function
  | Spmd.Ir.Rsum -> "ML_SUM"
  | Spmd.Ir.Rprod -> "ML_PROD"
  | Spmd.Ir.Rmin -> "ML_MIN"
  | Spmd.Ir.Rmax -> "ML_MAX"
  | Spmd.Ir.Rmean -> "ML_MEAN"
  | Spmd.Ir.Rany -> "ML_ANY"
  | Spmd.Ir.Rall -> "ML_ALL"

let sel_c = function
  | Spmd.Ir.Sel_all -> "ML_sel_all()"
  | Spmd.Ir.Sel_scalar s -> Printf.sprintf "ML_sel_scalar(%s)" (sexpr_c s)
  | Spmd.Ir.Sel_range (lo, step, hi) ->
      Printf.sprintf "ML_sel_range(%s, %s, %s)" (sexpr_c lo)
        (match step with Some s -> sexpr_c s | None -> "1.0")
        (sexpr_c hi)
  | Spmd.Ir.Sel_vec v -> Printf.sprintf "ML_sel_vec(%s)" (mangle v)

(* --- statements --------------------------------------------------------- *)

type emitter = {
  buf : Buffer.t;
  mutable indent : int;
  sc : scope;
  mutable has_return : bool;
  mutable tmp : int;
}

let line em fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string em.buf (String.make em.indent ' ');
      Buffer.add_string em.buf s;
      Buffer.add_char em.buf '\n')
    fmt

let fresh_c em prefix =
  em.tmp <- em.tmp + 1;
  Printf.sprintf "%s%d" prefix em.tmp

let rec emit_inst em (i : Spmd.Ir.inst) =
  match i with
  | Spmd.Ir.Iscalar (v, s) -> line em "%s = %s;" (mangle v) (sexpr_c s)
  | Spmd.Ir.Ielem { dst; model; expr } ->
      let hoisted, body = eexpr_c ~model expr in
      line em "{";
      em.indent <- em.indent + 2;
      List.iter (fun (n, e) -> line em "const double %s = %s;" n e) hoisted;
      line em "int ML_i;";
      line em "ML_reshape(&%s, %s->rows, %s->cols);" (mangle dst) (mangle model)
        (mangle model);
      line em "for (ML_i = ML_local_els(%s) - 1; ML_i >= 0; ML_i--)" (mangle dst);
      line em "  %s->data[ML_i] = %s;" (mangle dst) body;
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Icopy (d, s) -> line em "ML_copy(&%s, %s);" (mangle d) (mangle s)
  | Spmd.Ir.Imatmul (d, a, b) ->
      line em "ML_matrix_multiply(%s, %s, &%s);" (mangle a) (mangle b) (mangle d)
  | Spmd.Ir.Imatmul_t (d, a, b) ->
      line em "ML_matmul_t(%s, %s, &%s);" (mangle a) (mangle b) (mangle d)
  | Spmd.Ir.Idot (d, a, b) ->
      line em "%s = ML_dot(%s, %s);" (mangle d) (mangle a) (mangle b)
  | Spmd.Ir.Itranspose (d, a) ->
      line em "ML_transpose(%s, &%s);" (mangle a) (mangle d)
  | Spmd.Ir.Idiag (d, a) -> line em "ML_diag(%s, &%s);" (mangle a) (mangle d)
  | Spmd.Ir.Iouter (d, a, b) ->
      line em "ML_outer(%s, %s, &%s);" (mangle a) (mangle b) (mangle d)
  | Spmd.Ir.Ireduce_all (d, k, a) ->
      line em "%s = ML_reduce_all(%s, %s);" (mangle d) (red_c k) (mangle a)
  | Spmd.Ir.Ireduce_cols (d, k, a) ->
      line em "ML_reduce_cols(%s, %s, &%s);" (red_c k) (mangle a) (mangle d)
  | Spmd.Ir.Inorm (d, a) -> line em "%s = ML_norm(%s);" (mangle d) (mangle a)
  | Spmd.Ir.Iscan (d, k, a) ->
      line em "ML_cumulative(%s, %s, &%s);"
        (match k with Spmd.Ir.Scumsum -> "0" | Spmd.Ir.Scumprod -> "1")
        (mangle a) (mangle d)
  | Spmd.Ir.Isort { vdst; idst; arg } ->
      line em "ML_sort(%s, &%s, %s);" (mangle arg) (mangle vdst)
        (match idst with Some i -> "&" ^ mangle i | None -> "NULL")
  | Spmd.Ir.Ireduce_loc { vdst; idst; kind; arg } ->
      line em "%s = ML_reduce_index(%s, %s, &%s);" (mangle vdst) (red_c kind)
        (mangle arg) (mangle idst)
  | Spmd.Ir.Itrapz (d, x, y) ->
      line em "%s = ML_trapz(%s, %s);" (mangle d)
        (match x with Some x -> mangle x | None -> "NULL")
        (mangle y)
  | Spmd.Ir.Ishift (d, s, k) ->
      line em "ML_circshift(%s, (int)(%s), &%s);" (mangle s) (sexpr_c k)
        (mangle d)
  | Spmd.Ir.Ibcast (d, m, [ i ]) ->
      line em "%s = ML_broadcast_linear(%s, (int)(%s) - 1);" (mangle d)
        (mangle m) (sexpr_c i)
  | Spmd.Ir.Ibcast (d, m, [ i; j ]) ->
      line em "%s = ML_broadcast(%s, (int)(%s) - 1, (int)(%s) - 1);" (mangle d)
        (mangle m) (sexpr_c i) (sexpr_c j)
  | Spmd.Ir.Ibcast _ -> failwith "codegen: bad broadcast arity"
  | Spmd.Ir.Ibcast_batch (items, m) ->
      (* row index -1 marks a linear (column-major) index carried in
         the column slot, decoded per shape by the run time *)
      let n = List.length items in
      line em "{";
      em.indent <- em.indent + 2;
      line em "int ML_bi[%d], ML_bj[%d]; double ML_bv[%d];" n n n;
      List.iteri
        (fun k (_, idx) ->
          match idx with
          | [ i ] ->
              line em "ML_bi[%d] = -1; ML_bj[%d] = (int)(%s) - 1;" k k
                (sexpr_c i)
          | [ i; j ] ->
              line em "ML_bi[%d] = (int)(%s) - 1; ML_bj[%d] = (int)(%s) - 1;"
                k (sexpr_c i) k (sexpr_c j)
          | _ -> failwith "codegen: bad broadcast arity")
        items;
      line em "ML_broadcast_batch(%s, %d, ML_bi, ML_bj, ML_bv);" (mangle m) n;
      List.iteri
        (fun k (d, _) -> line em "%s = ML_bv[%d];" (mangle d) k)
        items;
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Ireduce_fused items ->
      let n = List.length items in
      line em "{";
      em.indent <- em.indent + 2;
      line em "int ML_fk[%d]; const MATRIX *ML_fa[%d], *ML_fb[%d];" n n n;
      line em "double ML_fv[%d];" n;
      List.iteri
        (fun k (_, r) ->
          let kind, a, b =
            match r with
            | Spmd.Ir.Fsum m -> ("ML_FUSE_SUM", m, None)
            | Spmd.Ir.Fmean m -> ("ML_FUSE_MEAN", m, None)
            | Spmd.Ir.Fdot (a, b) -> ("ML_FUSE_DOT", a, Some b)
            | Spmd.Ir.Fnorm m -> ("ML_FUSE_NORM", m, None)
          in
          line em "ML_fk[%d] = %s; ML_fa[%d] = %s; ML_fb[%d] = %s;" k kind k
            (mangle a) k
            (match b with Some b -> mangle b | None -> "NULL"))
        items;
      line em "ML_reduce_fused(%d, ML_fk, ML_fa, ML_fb, ML_fv);" n;
      List.iteri
        (fun k (d, _) -> line em "%s = ML_fv[%d];" (mangle d) k)
        items;
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Isetelem (m, [ i ], v) ->
      line em "{";
      em.indent <- em.indent + 2;
      line em "int ML_ix = (int)(%s) - 1;" (sexpr_c i);
      line em "if (ML_owner_linear(%s, ML_ix))" (mangle m);
      line em "  *ML_realaddr1(%s, ML_ix) = %s;" (mangle m) (sexpr_c v);
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Isetelem (m, [ i; j ], v) ->
      line em "{";
      em.indent <- em.indent + 2;
      line em "int ML_ix = (int)(%s) - 1, ML_jx = (int)(%s) - 1;" (sexpr_c i)
        (sexpr_c j);
      line em "if (ML_owner(%s, ML_ix, ML_jx))" (mangle m);
      line em "  *ML_realaddr2(%s, ML_ix, ML_jx) = %s;" (mangle m) (sexpr_c v);
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Isetelem _ -> failwith "codegen: bad element-store arity"
  | Spmd.Ir.Iload { dst; file } ->
      line em "ML_load(&%s, \"%s\");" (mangle dst) (c_escape file)
  | Spmd.Ir.Iconstruct { dst; kind; args } -> emit_construct em dst kind args
  | Spmd.Ir.Iliteral { dst; rows; cols; elems } ->
      line em "{";
      em.indent <- em.indent + 2;
      (* an empty initializer list is not legal C, so pad with one 0 *)
      line em "double ML_lit[] = { %s };"
        (match elems with
        | [] -> "0.0"
        | _ -> String.concat ", " (List.map sexpr_c elems));
      line em "ML_literal(&%s, %d, %d, ML_lit);" (mangle dst) rows cols;
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Isection { dst; src; sels } -> (
      match sels with
      | [ s ] ->
          line em "ML_section(%s, %s, ML_sel_all(), 1, &%s);" (mangle src)
            (sel_c s) (mangle dst)
      | [ s1; s2 ] ->
          line em "ML_section(%s, %s, %s, 2, &%s);" (mangle src) (sel_c s1)
            (sel_c s2) (mangle dst)
      | _ -> failwith "codegen: bad section arity")
  | Spmd.Ir.Isetsection { dst; sels; src } ->
      let s1, s2, nsel =
        match sels with
        | [ s ] -> (sel_c s, "ML_sel_all()", 1)
        | [ s1; s2 ] -> (sel_c s1, sel_c s2, 2)
        | _ -> failwith "codegen: bad section arity"
      in
      (match src with
      | Spmd.Ir.Ascalar s ->
          line em "ML_set_section(%s, %s, %s, %d, NULL, %s);" (mangle dst) s1
            s2 nsel (sexpr_c s)
      | Spmd.Ir.Amat v ->
          line em "ML_set_section(%s, %s, %s, %d, %s, 0.0);" (mangle dst) s1 s2
            nsel (mangle v))
  | Spmd.Ir.Iconcat { dst; grid_rows; grid_cols; parts } ->
      line em "{";
      em.indent <- em.indent + 2;
      line em "const MATRIX *ML_parts[] = { %s };"
        (String.concat ", " (List.map mangle parts));
      line em "ML_concat(&%s, %d, %d, ML_parts);" (mangle dst) grid_rows
        grid_cols;
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Icalluser { rets; name; args } -> emit_call em rets name args
  | Spmd.Ir.Iprint (name, Spmd.Ir.Pscalar (Spmd.Ir.Svar v))
    when is_str_var em.sc v ->
      line em "ML_print_str(\"%s\", %s);" (c_escape name) (mangle v)
  | Spmd.Ir.Iprint (name, Spmd.Ir.Pscalar s) ->
      line em "ML_print_scalar(\"%s\", %s);" (c_escape name) (sexpr_c s)
  | Spmd.Ir.Iprint (name, Spmd.Ir.Pmat v) ->
      line em "ML_print_matrix(\"%s\", %s);" (c_escape name) (mangle v)
  | Spmd.Ir.Iprint (name, Spmd.Ir.Pstr s) ->
      line em "ML_print_str(\"%s\", \"%s\");" (c_escape name) (c_escape s)
  | Spmd.Ir.Iprintf (Spmd.Ir.Sstr fmt :: rest) ->
      let args =
        List.map (fun a -> Printf.sprintf "(double)(%s)" (sexpr_c a)) rest
      in
      line em "ML_printf(\"%s\", %d%s);" (c_escape fmt) (List.length rest)
        (if args = [] then "" else ", " ^ String.concat ", " args)
  | Spmd.Ir.Iprintf _ -> failwith "codegen: fprintf needs a literal format"
  | Spmd.Ir.Ierror msg -> line em "ML_error(\"%s\");" (c_escape msg)
  | Spmd.Ir.Iif (branches, els) ->
      List.iteri
        (fun n (c, blk) ->
          line em "%s ((%s) != 0) {" (if n = 0 then "if" else "} else if")
            (sexpr_c c);
          em.indent <- em.indent + 2;
          emit_block em blk;
          em.indent <- em.indent - 2)
        branches;
      if els <> [] then begin
        line em "} else {";
        em.indent <- em.indent + 2;
        emit_block em els;
        em.indent <- em.indent - 2
      end;
      line em "}"
  | Spmd.Ir.Iwhile (c, blk) ->
      line em "while ((%s) != 0) {" (sexpr_c c);
      em.indent <- em.indent + 2;
      emit_block em blk;
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Ifor (v, start, step, stop, blk) ->
      (* Iterate on a hidden induction variable and assign the MATLAB
         loop variable at the top of each pass: after the loop (or a
         break) the variable holds the last iterated value, not one
         step past it, and a body that assigns the variable cannot
         change the trip count — both as in MATLAB. *)
      let st = fresh_c em "ML_step" and sp = fresh_c em "ML_stop" in
      let it = fresh_c em "ML_it" in
      line em "{";
      em.indent <- em.indent + 2;
      line em "double %s = %s, %s = %s, %s;" st
        (match step with Some s -> sexpr_c s | None -> "1.0")
        sp (sexpr_c stop) it;
      line em
        "for (%s = %s; (%s >= 0) ? (%s <= %s + 1e-12) : (%s >= %s - 1e-12); \
         %s += %s) {"
        it (sexpr_c start) st it sp it sp it st;
      em.indent <- em.indent + 2;
      line em "%s = %s;" (mangle v) it;
      emit_block em blk;
      em.indent <- em.indent - 2;
      line em "}";
      em.indent <- em.indent - 2;
      line em "}"
  | Spmd.Ir.Impi_rank _ | Spmd.Ir.Impi_size _ | Spmd.Ir.Impi_send _
  | Spmd.Ir.Impi_recv _ | Spmd.Ir.Impi_bcast _ | Spmd.Ir.Impi_probe _ ->
      failwith "codegen: explicit MPI builtins are not supported by the C back end"
  | Spmd.Ir.Ibreak -> line em "break;"
  | Spmd.Ir.Icontinue -> line em "continue;"
  | Spmd.Ir.Ireturn ->
      em.has_return <- true;
      line em "goto ML_done;"

and emit_construct em dst kind args =
  let d = mangle dst in
  let a n = sexpr_c (List.nth args n) in
  let dims () =
    match args with
    | [ n ] ->
        let s = Printf.sprintf "(int)(%s)" (sexpr_c n) in
        (s, s)
    | [ r; c ] ->
        ( Printf.sprintf "(int)(%s)" (sexpr_c r),
          Printf.sprintf "(int)(%s)" (sexpr_c c) )
    | _ -> failwith "codegen: constructor arity"
  in
  match kind with
  | Spmd.Ir.Czeros ->
      let r, c = dims () in
      line em "ML_zeros(&%s, %s, %s);" d r c
  | Spmd.Ir.Cones ->
      let r, c = dims () in
      line em "ML_ones(&%s, %s, %s);" d r c
  | Spmd.Ir.Ceye ->
      let r, c = dims () in
      line em "ML_eye(&%s, %s, %s);" d r c
  | Spmd.Ir.Crand ->
      let r, c = dims () in
      line em "ML_rand(&%s, %s, %s);" d r c
  | Spmd.Ir.Crandn ->
      let r, c = dims () in
      line em "ML_randn(&%s, %s, %s);" d r c
  | Spmd.Ir.Clinspace ->
      line em "ML_linspace(&%s, %s, %s, (int)(%s));" d (a 0) (a 1) (a 2)
  | Spmd.Ir.Crange -> line em "ML_range(&%s, %s, %s, %s);" d (a 0) (a 1) (a 2)

and emit_call em rets name args =
  line em "{";
  em.indent <- em.indent + 2;
  let actuals =
    List.mapi
      (fun k (arg : Spmd.Ir.call_arg) ->
        match arg with
        | Spmd.Ir.Ascalar s -> sexpr_c s
        | Spmd.Ir.Amat v ->
            let tmp = Printf.sprintf "ML_arg%d" (k + 1) in
            line em "MATRIX *%s = NULL;" tmp;
            line em "ML_copy(&%s, %s);" tmp (mangle v);
            tmp)
      args
  in
  let ret_actuals = List.map (fun r -> "&" ^ mangle r) rets in
  line em "u_%s(%s);" (mangle name) (String.concat ", " (actuals @ ret_actuals));
  List.iteri
    (fun k (arg : Spmd.Ir.call_arg) ->
      match arg with
      | Spmd.Ir.Amat _ -> line em "ML_free(&ML_arg%d);" (k + 1)
      | Spmd.Ir.Ascalar _ -> ())
    args;
  em.indent <- em.indent - 2;
  line em "}"

and emit_block em (b : Spmd.Ir.block) = List.iter (emit_inst em) b

(* --- declarations, functions, program ------------------------------------ *)

let emit_decls em vars ~skip =
  List.iter
    (fun (v, (t : Ty.t)) ->
      if not (List.mem v skip) then
        if t.Ty.rank = Ty.Rmatrix then line em "MATRIX *%s = NULL;" (mangle v)
        else if t.Ty.base = Ty.Literal then
          line em "const char *%s = \"\";" (mangle v)
        else line em "double %s = 0;" (mangle v))
    vars

let emit_frees em vars ~skip =
  List.iter
    (fun (v, (t : Ty.t)) ->
      if t.Ty.rank = Ty.Rmatrix && not (List.mem v skip) then
        line em "ML_free(&%s);" (mangle v))
    vars

let func_signature (f : Spmd.Ir.func) =
  let params =
    List.map
      (fun (p, (t : Ty.t)) ->
        if t.Ty.rank = Ty.Rmatrix then
          Printf.sprintf "const MATRIX *%s_in" (mangle p)
        else Printf.sprintf "double %s" (mangle p))
      f.Spmd.Ir.f_params
  in
  let rets =
    List.map
      (fun (r, (t : Ty.t)) ->
        if t.Ty.rank = Ty.Rmatrix then
          Printf.sprintf "MATRIX **ML_ret_%s" (mangle r)
        else Printf.sprintf "double *ML_ret_%s" (mangle r))
      f.Spmd.Ir.f_rets
  in
  Printf.sprintf "static void u_%s(%s)" (mangle f.Spmd.Ir.f_name)
    (String.concat ", " (params @ rets))

let emit_func buf (f : Spmd.Ir.func) =
  let em =
    { buf; indent = 0; sc = scope_of f.Spmd.Ir.f_vars; has_return = false; tmp = 0 }
  in
  line em "%s {" (func_signature f);
  em.indent <- 2;
  (* Matrix parameters arrive by reference but MATLAB semantics are by
     value: make local working copies. *)
  let param_names = List.map fst f.Spmd.Ir.f_params in
  emit_decls em f.Spmd.Ir.f_vars
    ~skip:(List.filter (fun p -> not (is_matrix_var em.sc p)) param_names);
  List.iter
    (fun (p, (t : Ty.t)) ->
      if t.Ty.rank = Ty.Rmatrix then
        line em "ML_copy(&%s, %s_in);" (mangle p) (mangle p))
    f.Spmd.Ir.f_params;
  let body_start = Buffer.length buf in
  ignore body_start;
  emit_block em f.Spmd.Ir.f_body;
  if em.has_return then line em "ML_done: (void)0;";
  List.iter
    (fun (r, (t : Ty.t)) ->
      if t.Ty.rank = Ty.Rmatrix then
        line em "ML_copy(ML_ret_%s, %s);" (mangle r) (mangle r)
      else line em "*ML_ret_%s = %s;" (mangle r) (mangle r))
    f.Spmd.Ir.f_rets;
  emit_frees em f.Spmd.Ir.f_vars ~skip:[];
  em.indent <- 0;
  line em "}";
  line em ""

(* Emit the whole program as one C translation unit. *)
let emit_c ?(name = "otter program") (p : Spmd.Ir.prog) : string =
  (* The C runtime carries only scalars and rows-by-cols matrices; a
     rank-N tensor anywhere in the program is a clear front-end error
     rather than a downstream C compile failure. *)
  let check_vars where vars =
    List.iter
      (fun (v, t) ->
        if Analysis.Ty.is_tensor t then
          failwith
            (Printf.sprintf
               "codegen: '%s' (%s) is a rank-N tensor; the C back end \
                supports scalars and matrices only"
               v where))
      vars
  in
  check_vars "script" p.Spmd.Ir.p_vars;
  List.iter
    (fun (f : Spmd.Ir.func) -> check_vars f.Spmd.Ir.f_name f.Spmd.Ir.f_vars)
    p.Spmd.Ir.p_funcs;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "/* %s -- SPMD C generated by the Otter MATLAB compiler.\n\
       \   Compile with otter_rt_seq.c (single CPU, no MPI) or\n\
       \   otter_rt_mpi.c (distributed memory). */\n\
        #include \"otter_rt.h\"\n\n"
       name);
  List.iter
    (fun f -> Buffer.add_string buf (func_signature f ^ ";\n"))
    p.Spmd.Ir.p_funcs;
  if p.Spmd.Ir.p_funcs <> [] then Buffer.add_char buf '\n';
  let em =
    { buf; indent = 0; sc = scope_of p.Spmd.Ir.p_vars; has_return = false; tmp = 0 }
  in
  line em "int main(int argc, char **argv) {";
  em.indent <- 2;
  emit_decls em p.Spmd.Ir.p_vars ~skip:[];
  line em "ML_init(&argc, &argv);";
  emit_block em p.Spmd.Ir.p_body;
  if em.has_return then line em "ML_done: (void)0;";
  emit_frees em p.Spmd.Ir.p_vars ~skip:[];
  line em "ML_finalize();";
  line em "return 0;";
  em.indent <- 0;
  line em "}";
  line em "";
  List.iter (emit_func buf) p.Spmd.Ir.p_funcs;
  Buffer.contents buf

(* Files a user needs next to the generated program. *)
let support_files =
  [
    ("otter_rt.h", C_runtime.header);
    ("otter_rt_common.c", C_runtime.common_impl);
    ("otter_rt_seq.c", C_runtime.seq_impl);
    ("otter_rt_mpi.c", C_runtime_mpi.mpi_impl);
  ]
