(* The C run-time library shipped with generated programs.

   [header] declares the MATRIX structure and the ML_* API used by the
   emitted code (paper section 4).  [seq_impl] is a self-contained
   single-process implementation, so any generated program can be
   compiled with a plain C compiler and executed without MPI -- this is
   also what the integration tests do.  [mpi_impl] is the
   distributed-memory implementation: row-contiguous block distribution
   of matrices, block distribution of vectors, replicated scalars,
   collectives over MPI.

   The rand() generator is the same splitmix64 counter hash as the
   OCaml run time, so compiled C programs, simulated parallel runs and
   the reference interpreter all compute identical data. *)

let header =
  {|/* otter_rt.h -- run-time library interface for Otter-generated code. */
#ifndef OTTER_RT_H
#define OTTER_RT_H

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <stdint.h>

/* A distributed matrix or vector.  Every process holds the global
   header plus its local block: matrices with more than one row are
   distributed by contiguous row blocks, row vectors by column blocks,
   and the sequential build simply owns everything. */
typedef struct {
  int rows, cols;
  int axis;   /* 0: distributed by rows; 1: by columns (row vectors) */
  int low;    /* first owned row (axis 0) or column (axis 1) */
  int count;  /* owned rows / columns */
  double *data; /* axis 0: count*cols, row-major; axis 1: count */
} MATRIX;

typedef enum { ML_SUM, ML_PROD, ML_MIN, ML_MAX, ML_MEAN, ML_ANY, ML_ALL } ML_RED;

/* Slot kinds for ML_reduce_fused: every kind combines with a plain sum,
   so one vector allreduce carries the whole batch. */
typedef enum { ML_FUSE_SUM, ML_FUSE_MEAN, ML_FUSE_DOT, ML_FUSE_NORM } ML_FUSE;

typedef struct {
  int kind;      /* 0: all, 1: scalar, 2: range, 3: vector */
  double lo, step, hi; /* range/scalar (1-based, inclusive) */
  const MATRIX *vec;   /* kind 3 */
} ML_SEL;

void ML_init(int *argc, char ***argv);
void ML_finalize(void);
int  ML_rank(void);
int  ML_procs(void);

void ML_reshape(MATRIX **m, int rows, int cols);
void ML_free(MATRIX **m);
int  ML_local_els(const MATRIX *m);
void ML_copy(MATRIX **dst, const MATRIX *src);
/* 1.0 when local element i of m lies on m's global main diagonal
   (used by element-wise loops with a folded eye() operand). */
double ML_eye_at(const MATRIX *m, int i);

void ML_zeros(MATRIX **dst, int rows, int cols);
void ML_ones(MATRIX **dst, int rows, int cols);
void ML_eye(MATRIX **dst, int rows, int cols);
void ML_rand(MATRIX **dst, int rows, int cols);
void ML_randn(MATRIX **dst, int rows, int cols);
void ML_linspace(MATRIX **dst, double a, double b, int n);
void ML_range(MATRIX **dst, double lo, double step, double hi);
void ML_literal(MATRIX **dst, int rows, int cols, const double *elems);
void ML_load(MATRIX **dst, const char *path);
double *ML_read_datafile(const char *path, int *rows, int *cols);

void   ML_matrix_multiply(const MATRIX *a, const MATRIX *b, MATRIX **dst);
/* C = A' * B without materializing the transpose: partial products over
   the owned rows of A and B, finished with one allreduce. */
void   ML_matmul_t(const MATRIX *a, const MATRIX *b, MATRIX **dst);
double ML_dot(const MATRIX *a, const MATRIX *b);
void   ML_transpose(const MATRIX *a, MATRIX **dst);
void   ML_diag(const MATRIX *a, MATRIX **dst);
void   ML_outer(const MATRIX *u, const MATRIX *v, MATRIX **dst);
double ML_reduce_all(ML_RED op, const MATRIX *m);
void   ML_reduce_cols(ML_RED op, const MATRIX *m, MATRIX **dst);
double ML_norm(const MATRIX *m);
void   ML_cumulative(int is_prod, const MATRIX *v, MATRIX **dst);
double ML_reduce_index(ML_RED op, const MATRIX *v, double *index_out);
void   ML_sort(const MATRIX *v, MATRIX **sorted, MATRIX **perm);
double ML_trapz(const MATRIX *x, const MATRIX *y); /* x may be NULL */
void   ML_circshift(const MATRIX *m, int k, MATRIX **dst);
void   ML_section(const MATRIX *src, ML_SEL s1, ML_SEL s2, int nsel,
                  MATRIX **dst);
void   ML_set_section(MATRIX *dst, ML_SEL s1, ML_SEL s2, int nsel,
                      const MATRIX *src, double fill);
void   ML_concat(MATRIX **dst, int grid_rows, int grid_cols,
                 const MATRIX **parts);

/* Element access (indices are 0-based here; the compiler subtracts 1). */
double  ML_broadcast(const MATRIX *m, int i, int j);
double  ML_broadcast_linear(const MATRIX *m, int g); /* column-major */
/* Batched ML_broadcast: n elements of one matrix replicated with a
   single collective.  ri[k] = -1 marks a linear (column-major) index
   carried in ci[k]; otherwise (ri[k], ci[k]) is a 0-based pair. */
void    ML_broadcast_batch(const MATRIX *m, int n, const int *ri,
                           const int *ci, double *out);
/* Batched sum-combining reductions: one vector allreduce evaluates
   every slot.  mb[k] is the second operand for ML_FUSE_DOT, NULL
   otherwise. */
void    ML_reduce_fused(int n, const int *kind, const MATRIX **ma,
                        const MATRIX **mb, double *out);
int     ML_owner(const MATRIX *m, int i, int j);
int     ML_owner_linear(const MATRIX *m, int g);
double *ML_realaddr2(MATRIX *m, int i, int j);
double *ML_realaddr1(MATRIX *m, int g);

double ML_numel(const MATRIX *m);
double ML_length(const MATRIX *m);

void ML_print_scalar(const char *name, double v);
void ML_print_matrix(const char *name, const MATRIX *m);
void ML_print_str(const char *name, const char *s);
void ML_printf(const char *fmt, int nargs, ...); /* double varargs */
void ML_error(const char *msg);

double ML_mod(double a, double b);
double ML_uniform_elem(int seed, long i);
double ML_normal_elem(int seed, long i);
int  ML_next_rand_seed(void);
double ML_rem(double a, double b);
double ML_sign(double x);
double ML_fix(double x);
double ML_log2(double x);
double ML_round(double x);
double ML_min2(double a, double b);
double ML_max2(double a, double b);

ML_SEL ML_sel_all(void);
ML_SEL ML_sel_scalar(double i);
ML_SEL ML_sel_range(double lo, double step, double hi);
ML_SEL ML_sel_vec(const MATRIX *v);

#endif /* OTTER_RT_H */
|}

let common_impl =
  {|/* Shared between the sequential and MPI builds. */
#include "otter_rt.h"
#include <stdarg.h>

static uint64_t ml_splitmix64(uint64_t z) {
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

static int ml_rand_counter = 0;
static const int ml_seed = 42;

int ML_next_rand_seed(void) { ml_rand_counter++; return ml_seed + ml_rand_counter; }

double ML_uniform_elem(int seed, long i) {
  uint64_t h = ml_splitmix64((uint64_t)i +
                             (uint64_t)(seed + 1) * 0x9e3779b97f4a7c15ULL);
  return (double)(h >> 11) * 0x1p-53;
}

double ML_normal_elem(int seed, long i) {
  double u1 = ML_uniform_elem(seed, i), u2 = ML_uniform_elem(seed + 77731, i);
  if (u1 <= 0) u1 = 1e-300;
  return sqrt(-2.0 * log(u1)) * cos(2.0 * 3.14159265358979323846 * u2);
}

double ML_mod(double a, double b) { return b == 0 ? a : a - b * floor(a / b); }
double ML_rem(double a, double b) { return b == 0 ? a : fmod(a, b); }
double ML_sign(double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); }
double ML_fix(double x) { return trunc(x); }
double ML_log2(double x) { return log(x) / log(2.0); }
double ML_round(double x) { return (x >= 0) ? floor(x + 0.5) : ceil(x - 0.5); }
double ML_min2(double a, double b) { return a < b ? a : b; }
double ML_max2(double a, double b) { return a > b ? a : b; }

double ML_numel(const MATRIX *m) { return (double)m->rows * m->cols; }
double ML_length(const MATRIX *m) {
  return (double)(m->rows > m->cols ? m->rows : m->cols);
}

ML_SEL ML_sel_all(void) { ML_SEL s = {0, 0, 0, 0, NULL}; return s; }
ML_SEL ML_sel_scalar(double i) { ML_SEL s = {1, i, 1, i, NULL}; return s; }
ML_SEL ML_sel_range(double lo, double step, double hi) {
  ML_SEL s = {2, lo, step, hi, NULL}; return s;
}
ML_SEL ML_sel_vec(const MATRIX *v) { ML_SEL s = {3, 0, 0, 0, v}; return s; }

/* Interpret the MATLAB-style format at run time: \n, \t escapes and
   the conversions %d %i %f %g %e (all arguments are doubles). */
void ML_printf(const char *fmt, int nargs, ...) {
  va_list ap;
  double args[64];
  int i, n = 0;
  va_start(ap, nargs);
  for (i = 0; i < nargs && i < 64; i++) args[n++] = va_arg(ap, double);
  va_end(ap);
  if (ML_rank() != 0) return;
  {
    const char *p = fmt;
    int a = 0;
    while (*p) {
      if (p[0] == '\\' && p[1]) {
        if (p[1] == 'n') putchar('\n');
        else if (p[1] == 't') putchar('\t');
        else putchar(p[1]);
        p += 2;
      } else if (p[0] == '%' && p[1]) {
        char spec[32];
        int k = 0;
        spec[k++] = '%';
        p++;
        while (*p && k < 30 &&
               (*p == '.' || *p == '-' || *p == '+' || *p == ' ' ||
                (*p >= '0' && *p <= '9')))
          spec[k++] = *p++;
        if (*p == '%') { putchar('%'); p++; continue; }
        if (*p == 'd' || *p == 'i') {
          spec[k++] = 'd'; spec[k] = 0;
          printf(spec, (int)(a < n ? args[a] : 0)); a++;
        } else if (*p == 'f' || *p == 'g' || *p == 'e') {
          spec[k++] = *p; spec[k] = 0;
          printf(spec, a < n ? args[a] : 0.0); a++;
        } else {
          putchar(*p);
        }
        p++;
      } else {
        putchar(*p++);
      }
    }
  }
}

/* Read a whitespace-separated numeric matrix (one row per line).
   Shared by both run-time flavours; every process reads the file. */
double *ML_read_datafile(const char *path, int *rows, int *cols) {
  FILE *f = fopen(path, "r");
  double *data = NULL;
  size_t cap = 0, n = 0;
  int r = 0, c = 0, line_c = 0, in_line = 0;
  int ch;
  if (!f) { ML_error("load: cannot open data file"); return NULL; }
  {
    char tok[64];
    int ti = 0;
    while ((ch = fgetc(f)) != EOF) {
      if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
        if (ti > 0) {
          tok[ti] = 0;
          if (n == cap) {
            cap = cap ? cap * 2 : 64;
            data = (double *)realloc(data, cap * sizeof(double));
          }
          data[n++] = atof(tok);
          line_c++;
          in_line = 1;
          ti = 0;
        }
        if (ch == '\n' && in_line) {
          if (r == 0) c = line_c;
          else if (line_c != c) ML_error("load: ragged data file");
          r++;
          line_c = 0;
          in_line = 0;
        }
      } else if (ti < 63) {
        tok[ti++] = (char)ch;
      }
    }
    if (ti > 0) {
      tok[ti] = 0;
      if (n == cap) {
        cap = cap ? cap * 2 : 64;
        data = (double *)realloc(data, cap * sizeof(double));
      }
      data[n++] = atof(tok);
      line_c++;
      in_line = 1;
    }
    if (in_line) {
      if (r == 0) c = line_c;
      else if (line_c != c) ML_error("load: ragged data file");
      r++;
    }
  }
  fclose(f);
  *rows = r;
  *cols = c;
  return data;
}

void ML_print_scalar(const char *name, double v) {
  if (ML_rank() != 0) return;
  if (name && name[0]) printf("%s = %g\n", name, v);
  else printf("%g\n", v);
}

void ML_print_str(const char *name, const char *s) {
  if (ML_rank() != 0) return;
  if (name && name[0]) printf("%s = %s\n", name, s);
  else printf("%s\n", s);
}

void ML_error(const char *msg) {
  if (ML_rank() == 0) fprintf(stderr, "error: %s\n", msg);
  ML_finalize();
  exit(1);
}
|}

let seq_impl =
  {|/* otter_rt_seq.c -- single-process implementation of the Otter
   run-time library.  Link this (plus otter_rt_common.c) with generated
   code to run it on one CPU without MPI. */
#include "otter_rt.h"

void ML_init(int *argc, char ***argv) { (void)argc; (void)argv; }
void ML_finalize(void) {}
int ML_rank(void) { return 0; }
int ML_procs(void) { return 1; }

void ML_reshape(MATRIX **m, int rows, int cols) {
  if (*m && (*m)->rows == rows && (*m)->cols == cols) return;
  if (*m) { free((*m)->data); free(*m); }
  *m = (MATRIX *)malloc(sizeof(MATRIX));
  (*m)->rows = rows; (*m)->cols = cols;
  (*m)->axis = rows == 1 ? 1 : 0;
  (*m)->low = 0;
  (*m)->count = rows == 1 ? cols : rows;
  (*m)->data = (double *)calloc((size_t)rows * cols, sizeof(double));
}

void ML_free(MATRIX **m) {
  if (*m) { free((*m)->data); free(*m); *m = NULL; }
}

int ML_local_els(const MATRIX *m) { return m->rows * m->cols; }

double ML_eye_at(const MATRIX *m, int i) {
  return i / m->cols == i % m->cols ? 1.0 : 0.0;
}

void ML_copy(MATRIX **dst, const MATRIX *src) {
  ML_reshape(dst, src->rows, src->cols);
  memcpy((*dst)->data, src->data, sizeof(double) * src->rows * src->cols);
}

void ML_zeros(MATRIX **dst, int rows, int cols) {
  ML_reshape(dst, rows, cols);
  memset((*dst)->data, 0, sizeof(double) * rows * cols);
}

void ML_ones(MATRIX **dst, int rows, int cols) {
  int i;
  ML_reshape(dst, rows, cols);
  for (i = 0; i < rows * cols; i++) (*dst)->data[i] = 1.0;
}

void ML_eye(MATRIX **dst, int rows, int cols) {
  int i;
  ML_zeros(dst, rows, cols);
  for (i = 0; i < (rows < cols ? rows : cols); i++)
    (*dst)->data[i * cols + i] = 1.0;
}

void ML_rand(MATRIX **dst, int rows, int cols) {
  long i;
  int seed = ML_next_rand_seed();
  ML_reshape(dst, rows, cols);
  for (i = 0; i < (long)rows * cols; i++)
    (*dst)->data[i] = ML_uniform_elem(seed, i);
}

void ML_randn(MATRIX **dst, int rows, int cols) {
  long i;
  int seed = ML_next_rand_seed();
  ML_reshape(dst, rows, cols);
  for (i = 0; i < (long)rows * cols; i++)
    (*dst)->data[i] = ML_normal_elem(seed, i);
}

void ML_linspace(MATRIX **dst, double a, double b, int n) {
  int i;
  double d = n > 1 ? (b - a) / (n - 1) : 0.0;
  ML_reshape(dst, 1, n);
  for (i = 0; i < n; i++) (*dst)->data[i] = a + i * d;
}

static int ml_range_len(double lo, double step, double hi) {
  double raw;
  if (step == 0) return 0;
  raw = (hi - lo) / step + 1e-9;
  return raw < 0 ? 0 : (int)floor(raw) + 1;
}

void ML_range(MATRIX **dst, double lo, double step, double hi) {
  int n = ml_range_len(lo, step, hi), i;
  ML_reshape(dst, 1, n);
  for (i = 0; i < n; i++) (*dst)->data[i] = lo + i * step;
}

void ML_literal(MATRIX **dst, int rows, int cols, const double *elems) {
  ML_reshape(dst, rows, cols);
  memcpy((*dst)->data, elems, sizeof(double) * rows * cols);
}

void ML_load(MATRIX **dst, const char *path) {
  int rows, cols;
  double *data = ML_read_datafile(path, &rows, &cols);
  ML_reshape(dst, rows, cols);
  memcpy((*dst)->data, data, sizeof(double) * (size_t)rows * cols);
  free(data);
}

void ML_matrix_multiply(const MATRIX *a, const MATRIX *b, MATRIX **dst) {
  int i, j, k;
  MATRIX *c = NULL;
  if (a->cols != b->rows) ML_error("matmul: inner dimensions disagree");
  ML_reshape(&c, a->rows, b->cols);
  for (i = 0; i < a->rows; i++)
    for (j = 0; j < b->cols; j++) {
      double acc = 0.0;
      for (k = 0; k < a->cols; k++)
        acc += a->data[i * a->cols + k] * b->data[k * b->cols + j];
      c->data[i * b->cols + j] = acc;
    }
  ML_free(dst);
  *dst = c;
}

void ML_matmul_t(const MATRIX *a, const MATRIX *b, MATRIX **dst) {
  int i, j, k;
  MATRIX *c = NULL;
  if (a->rows != b->rows) ML_error("matmul_t: common dimensions disagree");
  ML_reshape(&c, a->cols, b->cols);
  for (j = 0; j < a->cols; j++)
    for (k = 0; k < b->cols; k++) {
      double acc = 0.0;
      for (i = 0; i < a->rows; i++)
        acc += a->data[i * a->cols + j] * b->data[i * b->cols + k];
      c->data[j * b->cols + k] = acc;
    }
  ML_free(dst);
  *dst = c;
}

double ML_dot(const MATRIX *a, const MATRIX *b) {
  int i;
  double acc = 0.0;
  if (a->rows * a->cols != b->rows * b->cols) ML_error("dot: length mismatch");
  for (i = 0; i < a->rows * a->cols; i++) acc += a->data[i] * b->data[i];
  return acc;
}

void ML_transpose(const MATRIX *a, MATRIX **dst) {
  int i, j;
  MATRIX *c = NULL;
  ML_reshape(&c, a->cols, a->rows);
  for (i = 0; i < a->rows; i++)
    for (j = 0; j < a->cols; j++)
      c->data[j * a->rows + i] = a->data[i * a->cols + j];
  ML_free(dst);
  *dst = c;
}

void ML_diag(const MATRIX *a, MATRIX **dst) {
  int i, j, n;
  MATRIX *c = NULL;
  if (a->rows == 1 || a->cols == 1) {
    n = a->rows * a->cols;
    ML_reshape(&c, n, n);
    for (i = 0; i < n; i++)
      for (j = 0; j < n; j++)
        c->data[i * n + j] = (i == j) ? a->data[i] : 0.0;
  } else {
    n = a->rows < a->cols ? a->rows : a->cols;
    ML_reshape(&c, n, 1);
    for (i = 0; i < n; i++) c->data[i] = a->data[i * a->cols + i];
  }
  ML_free(dst);
  *dst = c;
}

void ML_outer(const MATRIX *u, const MATRIX *v, MATRIX **dst) {
  int i, j, m = u->rows * u->cols, n = v->rows * v->cols;
  MATRIX *c = NULL;
  ML_reshape(&c, m, n);
  for (i = 0; i < m; i++)
    for (j = 0; j < n; j++) c->data[i * n + j] = u->data[i] * v->data[j];
  ML_free(dst);
  *dst = c;
}

static double ml_red_init(ML_RED op) {
  switch (op) {
  case ML_PROD: case ML_ALL: return 1.0;
  case ML_MIN: case ML_MAX: return NAN; /* MATLAB: min/max skip NaNs */
  default: return 0.0;
  }
}

static double ml_red_comb(ML_RED op, double a, double b) {
  switch (op) {
  case ML_SUM: case ML_MEAN: return a + b;
  case ML_PROD: return a * b;
  case ML_MIN:
    if (isnan(a)) return b;
    if (isnan(b)) return a;
    return a < b ? a : b;
  case ML_MAX:
    if (isnan(a)) return b;
    if (isnan(b)) return a;
    return a > b ? a : b;
  case ML_ANY: return (a != 0 || b != 0) ? 1.0 : 0.0;
  case ML_ALL: return (a != 0 && b != 0) ? 1.0 : 0.0;
  }
  return 0.0;
}

double ML_reduce_all(ML_RED op, const MATRIX *m) {
  int i;
  double acc = ml_red_init(op);
  for (i = 0; i < m->rows * m->cols; i++)
    acc = ml_red_comb(op, acc, m->data[i]);
  if (op == ML_MEAN) acc /= (double)(m->rows * m->cols);
  return acc;
}

void ML_reduce_cols(ML_RED op, const MATRIX *m, MATRIX **dst) {
  int i, j;
  MATRIX *c = NULL;
  ML_reshape(&c, 1, m->cols);
  for (j = 0; j < m->cols; j++) {
    double acc = ml_red_init(op);
    for (i = 0; i < m->rows; i++)
      acc = ml_red_comb(op, acc, m->data[i * m->cols + j]);
    if (op == ML_MEAN) acc /= (double)m->rows;
    c->data[j] = acc;
  }
  ML_free(dst);
  *dst = c;
}

double ML_norm(const MATRIX *m) { return sqrt(ML_dot(m, m)); }

void ML_reduce_fused(int n, const int *kind, const MATRIX **ma,
                     const MATRIX **mb, double *out) {
  int k;
  for (k = 0; k < n; k++) {
    switch ((ML_FUSE)kind[k]) {
    case ML_FUSE_SUM: out[k] = ML_reduce_all(ML_SUM, ma[k]); break;
    case ML_FUSE_MEAN: out[k] = ML_reduce_all(ML_MEAN, ma[k]); break;
    case ML_FUSE_DOT: out[k] = ML_dot(ma[k], mb[k]); break;
    case ML_FUSE_NORM: out[k] = ML_norm(ma[k]); break;
    }
  }
}

void ML_cumulative(int is_prod, const MATRIX *v, MATRIX **dst) {
  int n = v->rows * v->cols, i;
  double acc = is_prod ? 1.0 : 0.0;
  MATRIX *c = NULL;
  if (v->rows > 1 && v->cols > 1)
    ML_error("cumsum/cumprod of a full matrix is not supported");
  ML_reshape(&c, v->rows, v->cols);
  for (i = 0; i < n; i++) {
    acc = is_prod ? acc * v->data[i] : acc + v->data[i];
    c->data[i] = acc;
  }
  ML_free(dst);
  *dst = c;
}

double ML_reduce_index(ML_RED op, const MATRIX *v, double *index_out) {
  int n = v->rows * v->cols, i, best_i = 0;
  double best;
  if (n == 0) ML_error("min/max of an empty vector");
  if (v->rows > 1 && v->cols > 1)
    ML_error("[m, i] = min/max of a full matrix is not supported");
  best = v->data[0];
  for (i = 1; i < n; i++) {
    double x = v->data[i];
    /* NaN is never better; anything beats a NaN (MATLAB) */
    if (!isnan(x) &&
        (isnan(best) || (op == ML_MIN ? x < best : x > best))) {
      best = x;
      best_i = i;
    }
  }
  *index_out = (double)(best_i + 1);
  return best;
}

static const double *ml_sort_keys;

static int ml_sort_cmp(const void *pa, const void *pb) {
  int a = *(const int *)pa, b = *(const int *)pb;
  int na = isnan(ml_sort_keys[a]), nb = isnan(ml_sort_keys[b]);
  if (na || nb) {                /* MATLAB: NaNs sort to the end */
    if (na && nb) return a - b;
    return na ? 1 : -1;
  }
  if (ml_sort_keys[a] < ml_sort_keys[b]) return -1;
  if (ml_sort_keys[a] > ml_sort_keys[b]) return 1;
  return a - b; /* stable: lower original index first */
}

void ML_sort(const MATRIX *v, MATRIX **sorted, MATRIX **perm) {
  int n = v->rows * v->cols, i;
  int *order = (int *)malloc(sizeof(int) * (n > 0 ? n : 1));
  MATRIX *s = NULL, *p = NULL;
  if (v->rows > 1 && v->cols > 1)
    ML_error("sort of a full matrix is not supported");
  for (i = 0; i < n; i++) order[i] = i;
  ml_sort_keys = v->data;
  qsort(order, n, sizeof(int), ml_sort_cmp);
  ML_reshape(&s, v->rows, v->cols);
  for (i = 0; i < n; i++) s->data[i] = v->data[order[i]];
  ML_free(sorted);
  *sorted = s;
  if (perm) {
    ML_reshape(&p, v->rows, v->cols);
    for (i = 0; i < n; i++) p->data[i] = (double)(order[i] + 1);
    ML_free(perm);
    *perm = p;
  }
  free(order);
}

double ML_trapz(const MATRIX *x, const MATRIX *y) {
  int i, n = y->rows * y->cols;
  double acc = 0.0;
  for (i = 0; i + 1 < n; i++) {
    double dx = x ? (x->data[i + 1] - x->data[i]) : 1.0;
    acc += dx * (y->data[i] + y->data[i + 1]) * 0.5;
  }
  return acc;
}

void ML_circshift(const MATRIX *m, int k, MATRIX **dst) {
  int n = m->rows * m->cols, i, s;
  MATRIX *c = NULL;
  ML_reshape(&c, m->rows, m->cols);
  if (n > 0) {
    s = ((k % n) + n) % n;
    for (i = 0; i < n; i++) c->data[i] = m->data[((i - s) % n + n) % n];
  }
  ML_free(dst);
  *dst = c;
}

static int ml_sel_count(ML_SEL s, int extent) {
  switch (s.kind) {
  case 0: return extent;
  case 1: return 1;
  case 2: return ml_range_len(s.lo, s.step, s.hi);
  default: return s.vec->rows * s.vec->cols;
  }
}

static int ml_sel_get(ML_SEL s, int extent, int k) {
  int i;
  switch (s.kind) {
  case 0: i = k; break;
  case 1: i = (int)s.lo - 1; break;
  case 2: i = (int)(s.lo + k * s.step) - 1; break;
  default: i = (int)s.vec->data[k] - 1; break;
  }
  if (i < 0 || i >= extent) ML_error("index out of bounds");
  return i;
}

void ML_section(const MATRIX *src, ML_SEL s1, ML_SEL s2, int nsel,
                MATRIX **dst) {
  MATRIX *c = NULL;
  if (nsel == 1) {
    int n = src->rows * src->cols;
    int len = ml_sel_count(s1, n), k;
    int rows = src->cols == 1 ? len : 1, cols = src->cols == 1 ? 1 : len;
    if (src->rows > 1 && src->cols > 1)
      ML_error("linear sections of a full matrix are not supported");
    ML_reshape(&c, rows, cols);
    for (k = 0; k < len; k++)
      c->data[k] = src->data[ml_sel_get(s1, n, k)];
  } else {
    int nr = ml_sel_count(s1, src->rows), nc = ml_sel_count(s2, src->cols);
    int i, j;
    ML_reshape(&c, nr, nc);
    for (i = 0; i < nr; i++)
      for (j = 0; j < nc; j++)
        c->data[i * nc + j] =
            src->data[ml_sel_get(s1, src->rows, i) * src->cols +
                      ml_sel_get(s2, src->cols, j)];
  }
  ML_free(dst);
  *dst = c;
}

void ML_set_section(MATRIX *dst, ML_SEL s1, ML_SEL s2, int nsel,
                    const MATRIX *src, double fill) {
  if (nsel == 1) {
    int n = dst->rows * dst->cols;
    int len = ml_sel_count(s1, n), k;
    if (dst->rows > 1 && dst->cols > 1)
      ML_error("linear section assignment on a full matrix is not supported");
    if (src && src->rows * src->cols != len)
      ML_error("section assignment size mismatch");
    for (k = 0; k < len; k++)
      dst->data[ml_sel_get(s1, n, k)] = src ? src->data[k] : fill;
  } else {
    int nr = ml_sel_count(s1, dst->rows), nc = ml_sel_count(s2, dst->cols);
    int i, j;
    if (src && src->rows * src->cols != nr * nc)
      ML_error("section assignment size mismatch");
    for (i = 0; i < nr; i++)
      for (j = 0; j < nc; j++)
        dst->data[ml_sel_get(s1, dst->rows, i) * dst->cols +
                  ml_sel_get(s2, dst->cols, j)] =
            src ? src->data[i * nc + j] : fill;
  }
}

void ML_concat(MATRIX **dst, int grid_rows, int grid_cols,
               const MATRIX **parts) {
  /* MATLAB drops empty operands from a literal: empty blocks are
     skipped, and a grid row of nothing but empties adds no rows. */
  int total_rows = 0, total_cols = -1, gi, gj;
  MATRIX *c = NULL;
  for (gi = 0; gi < grid_rows; gi++) {
    int h = -1, w = 0;
    for (gj = 0; gj < grid_cols; gj++) {
      const MATRIX *b = parts[gi * grid_cols + gj];
      if (b->rows * b->cols == 0) continue;
      if (h < 0) h = b->rows;
      else if (b->rows != h)
        ML_error("inconsistent row counts in matrix literal");
      w += b->cols;
    }
    if (h < 0) continue; /* every block in this row was empty */
    if (total_cols < 0) total_cols = w;
    else if (w != total_cols)
      ML_error("inconsistent column counts in matrix literal");
    total_rows += h;
  }
  if (total_cols < 0) total_cols = 0;
  ML_reshape(&c, total_rows, total_cols);
  {
    int roff = 0;
    for (gi = 0; gi < grid_rows; gi++) {
      int h = 0, coff = 0;
      for (gj = 0; gj < grid_cols; gj++) {
        const MATRIX *b = parts[gi * grid_cols + gj];
        int i, j;
        if (b->rows * b->cols == 0) continue;
        h = b->rows;
        for (i = 0; i < b->rows; i++)
          for (j = 0; j < b->cols; j++)
            c->data[(roff + i) * total_cols + coff + j] =
                b->data[i * b->cols + j];
        coff += b->cols;
      }
      roff += h;
    }
  }
  ML_free(dst);
  *dst = c;
}

double ML_broadcast(const MATRIX *m, int i, int j) {
  if (i < 0 || i >= m->rows || j < 0 || j >= m->cols)
    ML_error("index out of bounds");
  return m->data[i * m->cols + j];
}

double ML_broadcast_linear(const MATRIX *m, int g) {
  if (g < 0 || g >= m->rows * m->cols) ML_error("index out of bounds");
  if (m->rows == 1 || m->cols == 1) return m->data[g];
  return m->data[(g % m->rows) * m->cols + (g / m->rows)];
}

void ML_broadcast_batch(const MATRIX *m, int n, const int *ri,
                        const int *ci, double *out) {
  int k;
  for (k = 0; k < n; k++)
    out[k] = ri[k] < 0 ? ML_broadcast_linear(m, ci[k])
                       : ML_broadcast(m, ri[k], ci[k]);
}

int ML_owner(const MATRIX *m, int i, int j) { (void)m; (void)i; (void)j; return 1; }
int ML_owner_linear(const MATRIX *m, int g) { (void)m; (void)g; return 1; }

double *ML_realaddr2(MATRIX *m, int i, int j) {
  if (i < 0 || i >= m->rows || j < 0 || j >= m->cols)
    ML_error("index out of bounds");
  return &m->data[i * m->cols + j];
}

double *ML_realaddr1(MATRIX *m, int g) {
  if (g < 0 || g >= m->rows * m->cols) ML_error("index out of bounds");
  if (m->rows == 1 || m->cols == 1) return &m->data[g];
  return &m->data[(g % m->rows) * m->cols + (g / m->rows)];
}

void ML_print_matrix(const char *name, const MATRIX *m) {
  int i, j;
  if (ML_rank() != 0) return;
  if (name && name[0]) printf("%s =\n", name);
  for (i = 0; i < m->rows; i++) {
    printf("  ");
    for (j = 0; j < m->cols; j++) printf(" %10.4f", m->data[i * m->cols + j]);
    printf("\n");
  }
}
|}
