(* The paper's four benchmark applications (section 5) as MATLAB
   sources, parameterized by problem size.

   - conjugate gradient: positive definite system, matrix-vector
     multiplies and dot products dominate (paper: n = 2048);
   - ocean engineering: nonlinear wave excitation force on a submerged
     sphere via the Morrison equation -- vector shifts, outer products
     and trapz, all O(n) operations with small grain;
   - n-body: mean-field simulation of 5000 particles; uses mean() and
     exercises the run-time library's broadcast;
   - transitive closure: ceil(log2 n) boolean matrix multiplications,
     O(n^3) work, the best candidate for parallel execution.

   Problem generators are deterministic (counter-hash rand), so every
   back end computes identical data. *)

let paper_cg_n = 2048
let paper_ocean_n = 20000
let paper_nbody_n = 5000
let paper_tc_n = 512

(* Solve A x = b (A symmetric positive definite by construction) with a
   fixed number of CG iterations. *)
let cg ?(n = paper_cg_n) ?(iters = 50) () =
  Printf.sprintf
    {|%% conjugate gradient solver for a dense SPD system
n = %d;
maxit = %d;
A = rand(n, n);
A = A + A' + n * eye(n);
b = rand(n, 1);
x = zeros(n, 1);
r = b;
p = r;
rho = r' * r;
for it = 1:maxit
  q = A * p;
  alpha = rho / (p' * q);
  x = x + alpha .* p;
  r = r - alpha .* q;
  rho_new = r' * r;
  p = r + (rho_new / rho) .* p;
  rho = rho_new;
end
resid = norm(b - A * x);
xsum = sum(x);
fprintf('cg: n=%%d iters=%%d residual=%%e sum(x)=%%.8f\n', n, maxit, resid, xsum);
|}
    n iters

(* Nonlinear wave excitation force on a submerged sphere (Morrison
   equation).  The sea state is a superposition of harmonic components:
   the phase matrix is an outer product, the surface elevation a
   row-vector times matrix product; the time derivative of velocity is
   formed with vector shifts and the impulse with trapz. *)
let ocean ?(n = paper_ocean_n) () =
  Printf.sprintf
    {|%% ocean engineering: Morrison-equation wave force on a submerged sphere
n = %d;
g = 9.81;
rho = 1025;
D = 2.0;
Cm = 2.0;
Cd = 1.0;
Asec = pi * (D / 2)^2;
V = (4 / 3) * pi * (D / 2)^3;
t = linspace(0, 600, n);
dt = t(2) - t(1);
omega = (0.2:0.2:1.0)';
amp = (1.2:-0.2:0.4)';
phase = omega * t;
eta = amp' * cos(phase);
u = (g / 20) .* eta;
up = circshift(u, -1);
um = circshift(u, 1);
dudt = (up - um) ./ (2 * dt);
F = rho * Cm * V .* dudt + 0.5 * rho * Cd * Asec .* u .* abs(u);
impulse = trapz(t, F);
Fmax = max(abs(F));
Frms = sqrt(mean(F .* F));
fprintf('ocean: n=%%d impulse=%%.6e Fmax=%%.6e Frms=%%.6e\n', n, impulse, Fmax, Frms);
|}
    n

(* Mean-field n-body step: every particle is attracted toward the
   center of mass.  All operations are O(n); mean() and element
   broadcasts (tracking particle 1) match the paper's description. *)
let nbody ?(n = paper_nbody_n) ?(steps = 20) () =
  Printf.sprintf
    {|%% n-body simulation (mean-field approximation)
n = %d;
steps = %d;
dt = 0.001;
G2 = 0.8;
eps2 = 0.01;
px = rand(n, 1); py = rand(n, 1); pz = rand(n, 1);
vx = zeros(n, 1); vy = zeros(n, 1); vz = zeros(n, 1);
m = 1 + rand(n, 1);
M = sum(m);
for s = 1:steps
  cx = sum(px .* m) / M;
  cy = sum(py .* m) / M;
  cz = sum(pz .* m) / M;
  dx = cx - px; dy = cy - py; dz = cz - pz;
  r2 = dx .* dx + dy .* dy + dz .* dz + eps2;
  w = G2 ./ (r2 .* sqrt(r2));
  vx = vx + dt .* (w .* dx);
  vy = vy + dt .* (w .* dy);
  vz = vz + dt .* (w .* dz);
  px = px + dt .* vx;
  py = py + dt .* vy;
  pz = pz + dt .* vz;
end
mx = mean(px); my = mean(py); mz = mean(pz);
p1 = sqrt(px(1)^2 + py(1)^2 + pz(1)^2);
ke = 0.5 * sum(m .* (vx .* vx + vy .* vy + vz .* vz));
fprintf('nbody: n=%%d steps=%%d mean=(%%.6f,%%.6f,%%.6f) p1=%%.6f ke=%%.6e\n', n, steps, mx, my, mz, p1, ke);
|}
    n steps

(* Transitive closure of a sparse random digraph by repeated boolean
   matrix multiplication (log2 n squarings). *)
let transitive_closure ?(n = paper_tc_n) ?(density = 0.004) () =
  Printf.sprintf
    {|%% transitive closure via repeated matrix multiplication
n = %d;
B = double(rand(n, n) < %g | eye(n) > 0);
k = ceil(log2(n));
for s = 1:k
  B = double((B * B) > 0);
end
reach = sum(sum(B));
fprintf('tc: n=%%d squarings=%%d reachable=%%d\n', n, k, reach);
|}
    n density

(* --- rank-N tensor applications (beyond the paper's four) -------------- *)

let paper_heat_n = 48
let paper_heat_m = 32
let paper_lm_pages = 64
let paper_lm_m = 24

(* Jacobi relaxation of the 3-D heat equation.  The grid is a rank-3
   tensor block-distributed over the leading (page) axis: the two
   stencil shifts along it exercise neighbor communication, the four
   in-page shifts stay local. *)
let heat3d ?(n = paper_heat_n) ?(m = paper_heat_m) ?(iters = 30) () =
  Printf.sprintf
    {|%% 3-D heat equation: Jacobi relaxation on an n x m x m tensor grid
n = %d;
m = %d;
iters = %d;
T = zeros(n, m, m);
T(1, 1:m, 1:m) = ones(m, m);
for it = 1:iters
  up = T(1:n-2, 2:m-1, 2:m-1);
  dn = T(3:n,   2:m-1, 2:m-1);
  no = T(2:n-1, 1:m-2, 2:m-1);
  so = T(2:n-1, 3:m,   2:m-1);
  we = T(2:n-1, 2:m-1, 1:m-2);
  ea = T(2:n-1, 2:m-1, 3:m);
  T(2:n-1, 2:m-1, 2:m-1) = (up + dn + no + so + we + ea) ./ 6;
end
heat = sum(T);
peak = max(T);
core = T(2, 2, 2);
fprintf('heat3d: n=%%d m=%%d total=%%.6f peak=%%.6f core=%%.6f\n', n, m, heat, peak, core);
|}
    n m iters

(* Ensemble of logistic maps over a rank-3 state: pages of independent
   m x m parameter grids.  The growth-rate matrix broadcasts across the
   distributed page axis (frame broadcast), so the iteration is pure
   element-wise work with no communication until the final statistics. *)
let logistic ?(pages = paper_lm_pages) ?(m = paper_lm_m) ?(iters = 100) () =
  Printf.sprintf
    {|%% ensemble of logistic maps over a rank-3 state
p = %d;
m = %d;
iters = %d;
r = 3.5 + 0.5 .* rand(m, m);
x = rand(p, m, m);
for it = 1:iters
  x = r .* x .* (1 - x);
end
xm = mean(x);
xlo = min(x);
xhi = max(x);
x1 = x(1, 1, 1);
fprintf('logistic: p=%%d m=%%d mean=%%.6f min=%%.6f max=%%.6f x1=%%.6f\n', p, m, xm, xlo, xhi, x1);
|}
    pages m iters

type app = {
  name : string;
  key : string;
  source : int -> string; (* scaled source: scale in percent of paper size *)
  capture : string list; (* variables for verification *)
  grain : string; (* short description used in reports *)
}

let scale_dim pct full = max 8 (full * pct / 100)

let apps =
  [
    {
      name = "Conjugate Gradient";
      key = "cg";
      source =
        (fun pct -> cg ~n:(scale_dim pct paper_cg_n) ~iters:50 ());
      capture = [ "x"; "resid"; "rho" ];
      grain = "O(n^2) matvec per iteration";
    };
    {
      name = "Ocean Engineering";
      key = "ocean";
      source = (fun pct -> ocean ~n:(scale_dim pct paper_ocean_n) ());
      capture = [ "F"; "impulse"; "Fmax"; "Frms" ];
      grain = "O(n) shifts/trapz, small grain";
    };
    {
      name = "N-body Problem";
      key = "nbody";
      source =
        (fun pct -> nbody ~n:(scale_dim pct paper_nbody_n) ~steps:20 ());
      capture = [ "px"; "ke"; "p1" ];
      grain = "O(n) per step, mean + broadcast";
    };
    {
      name = "Transitive Closure";
      key = "tc";
      source =
        (fun pct ->
          transitive_closure ~n:(scale_dim pct paper_tc_n) ());
      capture = [ "B"; "reach" ];
      grain = "O(n^3) matmul, log n squarings";
    };
  ]

(* Rank-N tensor applications.  Kept out of [apps] so the paper-shape
   figures and tables keep reproducing the paper's four benchmarks;
   [all] adds them to verification and the speedup bench. *)
let tensor_apps =
  [
    {
      name = "3-D Heat Equation";
      key = "heat3d";
      source =
        (fun pct ->
          heat3d
            ~n:(scale_dim pct paper_heat_n)
            ~m:(scale_dim pct paper_heat_m)
            ~iters:30 ());
      capture = [ "T"; "heat"; "peak"; "core" ];
      grain = "rank-3 stencil, page-axis shifts communicate";
    };
    {
      name = "Logistic-map Ensemble";
      key = "logistic";
      source =
        (fun pct ->
          logistic
            ~pages:(scale_dim pct paper_lm_pages)
            ~m:(scale_dim pct paper_lm_m)
            ~iters:100 ());
      capture = [ "x"; "xm"; "xhi"; "x1" ];
      grain = "rank-3 element-wise, frame broadcast, no comm";
    };
  ]

let all = apps @ tensor_apps
let find key = List.find_opt (fun a -> a.key = key) all
