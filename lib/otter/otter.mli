(** The Otter compiler driver: the paper's multi-pass pipeline as one
    call, plus execution on the simulated machines, the sequential
    baselines, and cross-back-end verification. *)

type compiled = {
  source : string;
  ast : Mlang.Ast.program; (** after identifier resolution *)
  info : Analysis.Infer.result;
  prog : Spmd.Ir.prog; (** after rewriting, guards, and the pass pipeline *)
  passes : Spmd.Pass.record list; (** what each middle-end pass did *)
}

val compile :
  ?path:(string -> Mlang.Ast.func option) ->
  ?datadir:string ->
  ?opt:Spmd.Pass.level ->
  ?passes:string list ->
  ?validate:bool ->
  ?dump_after:(string -> Spmd.Ir.prog -> unit) ->
  string ->
  compiled
(** Passes 1-6.  [path] resolves M-file functions by name; [datadir]
    locates sample data files for [load] (paper section 3).  The middle
    end runs the pass pipeline of [opt] (default {!Spmd.Pass.O2});
    [passes] overrides it with an explicit pass list; [validate] runs
    the structural IR validator between passes; [dump_after] is called
    with the program after each pass.  Raises {!Mlang.Source.Error},
    {!Spmd.Lower.Unsupported}, {!Spmd.Pass.Unknown_pass}, or
    {!Spmd.Validate.Invalid}. *)

type frontend = {
  fe_source : string;
  fe_ast : Mlang.Ast.program; (** after identifier resolution *)
  fe_info : Analysis.Infer.result;
}

val compile_frontend :
  ?path:(string -> Mlang.Ast.func option) ->
  ?datadir:string ->
  string ->
  frontend
(** Passes 1-3 only (parse, resolve, infer): enough to run the
    reference interpreter, which accepts a superset of what the back
    end compiles (e.g. matrix growth through indexed assignment). *)

val interpret :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  ?mode:Interp.Cost.mode ->
  machine:Mpisim.Machine.t ->
  frontend ->
  Interp.Eval.outcome
(** Run the reference interpreter over a front-end-only compile. *)

val dump_ir : compiled -> string
val dump_ssa : compiled -> string

val report : compiled -> string
(** One-paragraph compilation report (variables, IR, per-pass table). *)

val pass_table : Spmd.Pass.record list -> string
(** Just the per-pass statistics table (name, wall-clock time, rewrite
    counts) from a {!compiled.passes} list. *)

type engine = Eir | Etcode
(** Which SPMD execution engine runs compiled programs: [Etcode] is the
    pre-decoded threaded-code fast path (the default), [Eir] the
    IR-walking VM kept as fallback and differential-testing foil.  The
    engines are bit-identical (verified per release across every
    app/machine/P/opt configuration) and share result types and the
    checkpoint format through [Exec.State]. *)

val default_engine : engine

val engine_of_string : string -> engine option
(** ["ir"] / ["tcode"]. *)

val engine_name : engine -> string

val run_parallel :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  ?engine:engine ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  compiled ->
  Exec.Vm.outcome
(** Execute the compiled SPMD program on the simulated machine. *)

val run_parallel_result :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  ?engine:engine ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  compiled ->
  Exec.Vm.run_result
(** Like {!run_parallel}, but a failing rank yields a structured
    {!Exec.Vm.run_result.Partial} instead of an exception. *)

val run_parallel_recovering :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  ?ckpt_interval:float ->
  ?max_recoveries:int ->
  ?engine:engine ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  compiled ->
  Exec.Vm.recovery
(** Like {!run_parallel_result}, wrapped in the VM's coordinated
    checkpoint/rollback driver (see {!Exec.Vm.run_recovering}):
    snapshots every [ckpt_interval] simulated seconds, up to
    [max_recoveries] deterministic replays on recoverable failures. *)

val run_interpreter :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  compiled ->
  Interp.Eval.outcome
(** The MathWorks-interpreter baseline (Figure 2). *)

val run_matcom :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  compiled ->
  Interp.Eval.outcome
(** The MATCOM compiled-sequential baseline (Figure 2). *)

type mismatch = { variable : string; detail : string }

type verdict =
  | Verified
  | Mismatched of mismatch list
  | Aborted of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : Exec.Vm.failure_kind;
      report : Mpisim.Sim.report;
          (** fault counters accumulated up to the abort *)
      recoveries : int;  (** rollbacks attempted before giving up *)
    }
      (** The parallel run died (rank failure, permanent kill, receive
          timeout under an injected fault model, exhausted
          retransmissions) before its results could be compared. *)

val verify_outcome :
  ?tol:float ->
  ?seed:int ->
  ?ckpt_interval:float ->
  ?max_recoveries:int ->
  ?engine:engine ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  capture:string list ->
  compiled ->
  verdict
(** Run the interpreter and the [nprocs]-CPU compiled program and
    compare the captured variables; [tol] absorbs reduction-order
    rounding.  Never raises for a failing parallel run — it degrades to
    {!verdict.Aborted}.  Nonzero [ckpt_interval]/[max_recoveries] route
    the parallel run through checkpoint/rollback recovery first. *)

val verify :
  ?tol:float ->
  ?seed:int ->
  ?engine:engine ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  capture:string list ->
  compiled ->
  mismatch list
(** Run the interpreter and the [nprocs]-CPU compiled program and
    compare the captured variables; [tol] absorbs reduction-order
    rounding.  Empty result = verified. *)
