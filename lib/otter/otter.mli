(** The Otter compiler driver: the paper's multi-pass pipeline as one
    call, plus execution on the simulated machines, the sequential
    baselines, and cross-back-end verification.

    All execution goes through a single {!Config.t} record built by
    {!config}: two canonical entry points ({!run} and {!verify})
    replace the old per-knob optional-argument families. *)

type compiled = {
  source : string;
  ast : Mlang.Ast.program; (** after identifier resolution *)
  info : Analysis.Infer.result;
  prog : Spmd.Ir.prog; (** after rewriting, guards, and the pass pipeline *)
  passes : Spmd.Pass.record list; (** what each middle-end pass did *)
}

val compile :
  ?path:(string -> Mlang.Ast.func option) ->
  ?datadir:string ->
  ?opt:Spmd.Pass.level ->
  ?passes:string list ->
  ?validate:bool ->
  ?dump_after:(string -> Spmd.Ir.prog -> unit) ->
  string ->
  compiled
(** Passes 1-6.  [path] resolves M-file functions by name; [datadir]
    locates sample data files for [load] (paper section 3).  The middle
    end runs the pass pipeline of [opt] (default {!Spmd.Pass.O2});
    [passes] overrides it with an explicit pass list; [validate] runs
    the structural IR validator between passes; [dump_after] is called
    with the program after each pass.  Raises {!Mlang.Source.Error},
    {!Spmd.Lower.Unsupported}, {!Spmd.Pass.Unknown_pass}, or
    {!Spmd.Validate.Invalid}. *)

type frontend = {
  fe_source : string;
  fe_ast : Mlang.Ast.program; (** after identifier resolution *)
  fe_info : Analysis.Infer.result;
}

val compile_frontend :
  ?path:(string -> Mlang.Ast.func option) ->
  ?datadir:string ->
  string ->
  frontend
(** Passes 1-3 only (parse, resolve, infer): enough to run the
    reference interpreter, which accepts a superset of what the back
    end compiles (e.g. matrix growth through indexed assignment). *)

(** Every knob a run or verification takes, in one record.  Build one
    with {!config}; entry points take the whole record, so adding a
    knob never changes their signatures. *)
module Config : sig
  (** What executes the program: [Etcode] is the pre-decoded
      threaded-code fast path (the default), [Eir] the IR-walking VM
      kept as fallback and differential-testing foil — the two are
      bit-identical (verified per release across every
      app/machine/P/opt configuration) and share result types and the
      checkpoint format through [Exec.State].  [Einterp] and [Ematcom]
      are the sequential baselines of Figure 2 (the reference
      interpreter under the interpreter / MATCOM cost model). *)
  type engine = Etcode | Eir | Einterp | Ematcom

  type t = {
    machine : Mpisim.Machine.t;
    nprocs : int;
    engine : engine;
    seed : int;  (** replicated RNG seed *)
    datadir : string;  (** where [load] finds sample data files *)
    capture : string list;
        (** script variables whose final values are returned / compared;
            for {!verify}, [[]] means "every inferred variable" *)
    tol : float;  (** relative comparison tolerance for {!verify} *)
    ckpt_interval : float;
        (** simulated seconds between checkpoints (0 = none) *)
    max_recoveries : int;  (** rollback/replay budget (0 = no retries) *)
    layout : Runtime.Dmat.layout;
        (** the data-distribution policy for the SPMD engines: block
            (the paper's layout, the default), block-cyclic, or 2-D
            grid.  Sequential baselines ignore it. *)
  }

  val default_engine : engine

  val engine_of_string : string -> engine option
  (** ["tcode"] / ["ir"] / ["interp"] / ["matcom"]. *)

  val engine_name : engine -> string

  val layout_of_string : string -> Runtime.Dmat.layout option
  (** ["block"] / ["cyclic"] / ["cyclic:B"] / ["grid:PRxPC"]. *)

  val layout_name : Runtime.Dmat.layout -> string

  val make :
    ?machine:Mpisim.Machine.t ->
    ?nprocs:int ->
    ?engine:engine ->
    ?seed:int ->
    ?datadir:string ->
    ?capture:string list ->
    ?tol:float ->
    ?chaos:bool ->
    ?ckpt_interval:float ->
    ?max_recoveries:int ->
    ?layout:Runtime.Dmat.layout ->
    unit ->
    t
  (** See {!config}. *)
end

val config :
  ?machine:Mpisim.Machine.t ->
  ?nprocs:int ->
  ?engine:Config.engine ->
  ?seed:int ->
  ?datadir:string ->
  ?capture:string list ->
  ?tol:float ->
  ?chaos:bool ->
  ?ckpt_interval:float ->
  ?max_recoveries:int ->
  ?layout:Runtime.Dmat.layout ->
  unit ->
  Config.t
(** The smart constructor (= {!Config.make}).  Defaults: the Meiko
    CS-2, 4 processors, the [Etcode] engine, seed 42, datadir ["."],
    no captures, tolerance 1e-9, no checkpointing or recovery, the
    block data layout.  [~chaos:true] is shorthand for "survive the
    fault model": it fills in [ckpt_interval = 0.05] and
    [max_recoveries = 3] unless those were given explicitly. *)

val interpret : Config.t -> frontend -> Interp.Eval.outcome
(** Run the reference interpreter over a front-end-only compile (which
    accepts a superset of what the back end compiles).  The cost model
    follows [cfg.engine]: [Ematcom] prices MATCOM-compiled code, any
    other engine the interpreter baseline. *)

val dump_ir : compiled -> string
val dump_ssa : compiled -> string

val report : compiled -> string
(** One-paragraph compilation report (variables, IR, per-pass table). *)

val pass_table : Spmd.Pass.record list -> string
(** Just the per-pass statistics table (name, wall-clock time, rewrite
    counts) from a {!compiled.passes} list. *)

val run : Config.t -> compiled -> Exec.State.recovery
(** Execute the compiled program under [cfg].  SPMD engines run on
    [cfg.nprocs] simulated processors of [cfg.machine], wrapped in the
    coordinated checkpoint/rollback driver when
    [cfg.ckpt_interval]/[cfg.max_recoveries] ask for it; the
    sequential baseline engines ([Einterp]/[Ematcom]) run the
    reference interpreter and present its result in the same shape (a
    one-rank report whose makespan is the modeled sequential time).  A
    clean run is one attempt with no rollbacks; a failing rank
    surfaces as a structured [Partial], never an exception. *)

val outcome_exn : Exec.State.recovery -> Exec.State.outcome
(** The final outcome of a {!run}, raising {!Exec.Vm.Runtime_error}
    with the failure detail when the final attempt still failed. *)

type mismatch = { variable : string; detail : string }

type verdict =
  | Verified
  | Mismatched of mismatch list
  | Aborted of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : Exec.Vm.failure_kind;
      report : Mpisim.Sim.report;
          (** fault counters accumulated up to the abort *)
      recoveries : int;  (** rollbacks attempted before giving up *)
    }
      (** The parallel run died (rank failure, permanent kill, receive
          timeout under an injected fault model, exhausted
          retransmissions) before its results could be compared. *)

val verify : Config.t -> compiled -> verdict
(** Run the reference interpreter and the compiled program under [cfg]
    and compare the captured variables; [cfg.tol] absorbs
    reduction-order rounding and [cfg.capture = []] compares every
    inferred script variable.  The parallel leg uses [cfg.engine]
    (sequential engines are promoted to the default SPMD engine).
    Never raises for a failing parallel run — it degrades to
    {!verdict.Aborted}.  Nonzero [cfg.ckpt_interval]/
    [cfg.max_recoveries] route the parallel run through
    checkpoint/rollback recovery first. *)

val verify_list : Config.t -> compiled -> mismatch list
(** {!verify} for callers that treat an abort as fatal: empty result =
    verified, mismatches returned as a list, [Aborted] raised as
    {!Exec.Vm.Runtime_error}. *)

module Sched = Sched
(** The multi-tenant space-sharing job scheduler (see {!Sched}). *)
