(* The Otter compiler driver: the paper's multi-pass pipeline as one
   call, plus helpers to execute the result on the simulated machines,
   run the sequential baselines, and verify that all back ends agree. *)

module Ty = Analysis.Ty

type compiled = {
  source : string;
  ast : Mlang.Ast.program; (* resolved *)
  info : Analysis.Infer.result;
  prog : Spmd.Ir.prog; (* after rewriting, guards, and the pass pipeline *)
  passes : Spmd.Pass.record list;
}

(* Passes 1-6: scan/parse, resolve, SSA + inference, rewrite, owner
   guards, then the middle-end pass pipeline ([passes] overrides the
   [opt] level's pass list; [validate] checks IR invariants between
   passes; [dump_after] sees the program after each pass). *)
let compile ?path ?datadir ?(opt = Spmd.Pass.O2) ?passes ?validate ?dump_after
    (source : string) : compiled =
  let ast = Mlang.Parser.parse_program source in
  let ast = Analysis.Resolve.run ?path ast in
  let info = Analysis.Infer.program ?datadir ast in
  let prog = Spmd.Lower.lower_program info ast in
  let names =
    match passes with Some ps -> ps | None -> Spmd.Pass.level_passes opt
  in
  let prog, records =
    Spmd.Pass.run_pipeline ?validate ?dump_after names prog
  in
  { source; ast; info; prog; passes = records }

(* Pass 7 lives in [Codegen.emit_c]. *)

(* Passes 1-3 only: enough to run the reference interpreter, which
   supports a superset of what the back end compiles (e.g. matrix
   growth through indexed assignment). *)
type frontend = {
  fe_source : string;
  fe_ast : Mlang.Ast.program; (* resolved *)
  fe_info : Analysis.Infer.result;
}

let compile_frontend ?path ?datadir (source : string) : frontend =
  let ast = Mlang.Parser.parse_program source in
  let ast = Analysis.Resolve.run ?path ast in
  let info = Analysis.Infer.program ?datadir ast in
  { fe_source = source; fe_ast = ast; fe_info = info }

let interpret ?capture ?seed ?datadir ?(mode = Interp.Cost.Interpreter)
    ~machine (fe : frontend) =
  Interp.Eval.run ?capture ?seed ?datadir ~mode ~machine fe.fe_ast

let dump_ir c = Spmd.Ir_pp.prog_to_string c.prog

let dump_ssa (c : compiled) =
  let script, _ = Analysis.Ssa.convert_script c.ast.Mlang.Ast.script in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Analysis.Ssa_pp.script_to_string script);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Analysis.Ssa_pp.func_to_string (Analysis.Ssa.convert_func f)))
    c.ast.Mlang.Ast.funcs;
  Buffer.contents buf

(* Per-pass statistics table: name, wall-clock, total rewrites, and the
   per-rule breakdown for every pass that ran. *)
let pass_table (records : Spmd.Pass.record list) : string =
  match records with
  | [] -> "passes: none (O0)"
  | rs ->
      let rows =
        List.map
          (fun (r : Spmd.Pass.record) ->
            let detail =
              if r.Spmd.Pass.rewrites = 0 then "-"
              else
                String.concat ", "
                  (List.filter_map
                     (fun (k, n) ->
                       if n = 0 then None else Some (Printf.sprintf "%s %d" k n))
                     r.Spmd.Pass.detail)
            in
            Printf.sprintf "  %-16s %8.3f ms %6d rewrites  %s" r.Spmd.Pass.pass
              (r.Spmd.Pass.seconds *. 1000.)
              r.Spmd.Pass.rewrites detail)
          rs
      in
      String.concat "\n" ("passes:" :: rows)

(* One-paragraph compilation report (otterc compile --stats). *)
let report (c : compiled) : string =
  let insts = ref 0 and comm = ref 0 and elem = ref 0 in
  let count_block b =
    Spmd.Ir.iter_insts
      (fun i ->
        incr insts;
        match i with
        | Spmd.Ir.Imatmul _ | Spmd.Ir.Idot _ | Spmd.Ir.Itranspose _
        | Spmd.Ir.Idiag _ | Spmd.Ir.Iouter _ | Spmd.Ir.Ireduce_all _
        | Spmd.Ir.Ireduce_cols _
        | Spmd.Ir.Inorm _ | Spmd.Ir.Itrapz _ | Spmd.Ir.Ishift _
        | Spmd.Ir.Ibcast _ | Spmd.Ir.Iscan _ | Spmd.Ir.Ireduce_loc _
        | Spmd.Ir.Isection _ | Spmd.Ir.Iconcat _ | Spmd.Ir.Imatmul_t _
        | Spmd.Ir.Ibcast_batch _ | Spmd.Ir.Ireduce_fused _ ->
            incr comm
        | Spmd.Ir.Ielem _ -> incr elem
        | _ -> ())
      b
  in
  count_block c.prog.Spmd.Ir.p_body;
  List.iter (fun (f : Spmd.Ir.func) -> count_block f.f_body) c.prog.Spmd.Ir.p_funcs;
  let scalars = ref 0 and matrices = ref 0 in
  Hashtbl.iter
    (fun _ (t : Ty.t) ->
      if t.Ty.rank = Ty.Rscalar then incr scalars else incr matrices)
    c.info.Analysis.Infer.var_ty;
  String.concat "\n"
    [
      Printf.sprintf "variables: %d scalar (replicated), %d matrix (distributed)"
        !scalars !matrices;
      Printf.sprintf "functions: %d" (List.length c.prog.Spmd.Ir.p_funcs);
      Printf.sprintf
        "IR: %d instructions; %d run-time library calls (communication); %d fused element-wise loops"
        !insts !comm !elem;
      pass_table c.passes;
      "";
    ]

(* Which SPMD execution engine runs the compiled program: the
   pre-decoded threaded-code executor (the default fast path) or the
   IR-walking VM it replaced (kept as a fallback and differential
   -testing foil).  Both are bit-identical; see [Exec.State]. *)
type engine = Eir | Etcode

let default_engine = Etcode

let engine_of_string = function
  | "ir" -> Some Eir
  | "tcode" -> Some Etcode
  | _ -> None

let engine_name = function Eir -> "ir" | Etcode -> "tcode"

(* Run the compiled SPMD program on [nprocs] CPUs of [machine]. *)
let run_parallel ?capture ?seed ?datadir ?(engine = default_engine) ~machine
    ~nprocs (c : compiled) =
  match engine with
  | Eir -> Exec.Vm.run ?capture ?seed ?datadir ~machine ~nprocs c.prog
  | Etcode -> Exec.Tcode.run ?capture ?seed ?datadir ~machine ~nprocs c.prog

(* Same, degrading to [Partial] when a rank fails instead of raising. *)
let run_parallel_result ?capture ?seed ?datadir ?(engine = default_engine)
    ~machine ~nprocs (c : compiled) =
  match engine with
  | Eir -> Exec.Vm.run_result ?capture ?seed ?datadir ~machine ~nprocs c.prog
  | Etcode ->
      Exec.Tcode.run_result ?capture ?seed ?datadir ~machine ~nprocs c.prog

(* Same again, wrapped in the engine's checkpoint/rollback driver:
   survives permanent rank kills and message loss up to the retry
   budget.  The snapshot format is engine-agnostic. *)
let run_parallel_recovering ?capture ?seed ?datadir ?ckpt_interval
    ?max_recoveries ?(engine = default_engine) ~machine ~nprocs (c : compiled)
    =
  match engine with
  | Eir ->
      Exec.Vm.run_recovering ?capture ?seed ?datadir ?ckpt_interval
        ?max_recoveries ~machine ~nprocs c.prog
  | Etcode ->
      Exec.Tcode.run_recovering ?capture ?seed ?datadir ?ckpt_interval
        ?max_recoveries ~machine ~nprocs c.prog

(* Sequential baselines (Figure 2). *)
let run_interpreter ?capture ?seed ?datadir ~machine (c : compiled) =
  Interp.Eval.run ?capture ?seed ?datadir ~mode:Interp.Cost.Interpreter ~machine
    c.ast

let run_matcom ?capture ?seed ?datadir ~machine (c : compiled) =
  Interp.Eval.run ?capture ?seed ?datadir ~mode:Interp.Cost.Matcom ~machine
    c.ast

(* --- cross-back-end verification ---------------------------------------- *)

type mismatch = {
  variable : string;
  detail : string;
}

let compare_values ~tol (a : Interp.Eval.captured) (b : Exec.Vm.captured) :
    string option =
  let close x y =
    x = y (* covers equal infinities *)
    || (Float.is_nan x && Float.is_nan y)
    ||
    let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
    Float.abs (x -. y) <= tol *. scale
  in
  match (a, b) with
  | Interp.Eval.Cscalar x, Exec.Vm.Cscalar y ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | Interp.Eval.Cscalar x, Exec.Vm.Cmat (1, 1, [| y |]) ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | Interp.Eval.Cmat (r1, c1, d1), Exec.Vm.Cmat (r2, c2, d2) ->
      if r1 <> r2 || c1 <> c2 then
        Some (Printf.sprintf "shape %dx%d vs %dx%d" r1 c1 r2 c2)
      else begin
        let bad = ref None in
        Array.iteri
          (fun i x ->
            if !bad = None && not (close x d2.(i)) then
              bad := Some (Printf.sprintf "element %d: %g vs %g" i x d2.(i)))
          d1;
        !bad
      end
  | Interp.Eval.Cmat (1, 1, [| x |]), Exec.Vm.Cscalar y ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | _ -> Some "rank mismatch"

type verdict =
  | Verified
  | Mismatched of mismatch list
  | Aborted of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : Exec.Vm.failure_kind;
      report : Mpisim.Sim.report;
      recoveries : int;
    }

(* Run the interpreter and the compiled program on [nprocs] processors
   and compare the captured variables (within [tol], which absorbs
   reduction-order rounding).  When the parallel run dies — e.g. under
   an injected fault model without the reliable layer — the verdict is
   a structured [Aborted] naming the failing rank and operation rather
   than an exception.  [ckpt_interval]/[max_recoveries] route the
   parallel run through the checkpoint/rollback driver, so a verdict of
   [Verified] can also mean "failed, recovered, and still bit-compatible
   with the reference". *)
let verify_outcome ?(tol = 1e-9) ?seed ?(ckpt_interval = 0.)
    ?(max_recoveries = 0) ?engine ~machine ~nprocs ~capture (c : compiled) :
    verdict =
  let ref_run = run_interpreter ?seed ~capture ~machine c in
  let par_result, recoveries =
    if ckpt_interval > 0. || max_recoveries > 0 then begin
      let rc =
        run_parallel_recovering ?seed ~capture ~ckpt_interval ~max_recoveries
          ?engine ~machine ~nprocs c
      in
      (rc.Exec.Vm.r_result, rc.Exec.Vm.r_attempts - 1)
    end
    else (run_parallel_result ?seed ~capture ?engine ~machine ~nprocs c, 0)
  in
  match par_result with
  | Exec.Vm.Partial { failed_rank; operation; detail; kind; report } ->
      Aborted { failed_rank; operation; detail; kind; report; recoveries }
  | Exec.Vm.Complete par_run -> (
      let mismatches =
        List.filter_map
          (fun name ->
            match
              ( List.assoc_opt name ref_run.Interp.Eval.captures,
                List.assoc_opt name par_run.Exec.Vm.captures )
            with
            | Some a, Some b -> (
                match compare_values ~tol a b with
                | None -> None
                | Some detail -> Some { variable = name; detail })
            | None, None ->
                (* Absent from both runs (e.g. the index variable of a
                   zero-trip loop, or a non-numeric value neither back
                   end captures): the runs agree, so this is clean. *)
                None
            | None, _ ->
                Some { variable = name; detail = "missing in interpreter" }
            | _, None ->
                Some { variable = name; detail = "missing in compiled run" })
          capture
      in
      match mismatches with [] -> Verified | ms -> Mismatched ms)

let verify ?tol ?seed ?engine ~machine ~nprocs ~capture (c : compiled) :
    mismatch list =
  match verify_outcome ?tol ?seed ?engine ~machine ~nprocs ~capture c with
  | Verified -> []
  | Mismatched ms -> ms
  | Aborted { detail; _ } -> raise (Exec.Vm.Runtime_error detail)
