(* The Otter compiler driver: the paper's multi-pass pipeline as one
   call, plus helpers to execute the result on the simulated machines,
   run the sequential baselines, and verify that all back ends agree. *)

module Ty = Analysis.Ty

type compiled = {
  source : string;
  ast : Mlang.Ast.program; (* resolved *)
  info : Analysis.Infer.result;
  prog : Spmd.Ir.prog; (* after rewriting, guards, and the pass pipeline *)
  passes : Spmd.Pass.record list;
}

(* Passes 1-6: scan/parse, resolve, SSA + inference, rewrite, owner
   guards, then the middle-end pass pipeline ([passes] overrides the
   [opt] level's pass list; [validate] checks IR invariants between
   passes; [dump_after] sees the program after each pass). *)
let compile ?path ?datadir ?(opt = Spmd.Pass.O2) ?passes ?validate ?dump_after
    (source : string) : compiled =
  let ast = Mlang.Parser.parse_program source in
  let ast = Analysis.Resolve.run ?path ast in
  let info = Analysis.Infer.program ?datadir ast in
  Analysis.Ast_check.validate ast;
  let prog = Spmd.Lower.lower_program info ast in
  let names =
    match passes with Some ps -> ps | None -> Spmd.Pass.level_passes opt
  in
  let prog, records =
    Spmd.Pass.run_pipeline ?validate ?dump_after names prog
  in
  { source; ast; info; prog; passes = records }

(* Pass 7 lives in [Codegen.emit_c]. *)

(* Passes 1-3 only: enough to run the reference interpreter, which
   supports a superset of what the back end compiles (e.g. matrix
   growth through indexed assignment). *)
type frontend = {
  fe_source : string;
  fe_ast : Mlang.Ast.program; (* resolved *)
  fe_info : Analysis.Infer.result;
}

let compile_frontend ?path ?datadir (source : string) : frontend =
  let ast = Mlang.Parser.parse_program source in
  let ast = Analysis.Resolve.run ?path ast in
  let info = Analysis.Infer.program ?datadir ast in
  Analysis.Ast_check.validate ast;
  { fe_source = source; fe_ast = ast; fe_info = info }

(* --- the run configuration ---------------------------------------------- *)

(* Every knob a run or verification can take, in one record.  The smart
   constructor [config] owns the defaults (and the [chaos] shorthand),
   so adding a knob is one field + one optional argument instead of a
   change to every entry point. *)
module Config = struct
  (* What executes the program: the two SPMD engines (bit-identical;
     see [Exec.State]) and the two sequential baselines of Figure 2. *)
  type engine = Etcode | Eir | Einterp | Ematcom

  type t = {
    machine : Mpisim.Machine.t;
    nprocs : int;
    engine : engine;
    seed : int;
    datadir : string;
    capture : string list;
    tol : float;
    ckpt_interval : float;
    max_recoveries : int;
    layout : Runtime.Dmat.layout;
  }

  let default_engine = Etcode

  let engine_of_string = function
    | "tcode" -> Some Etcode
    | "ir" -> Some Eir
    | "interp" -> Some Einterp
    | "matcom" -> Some Ematcom
    | _ -> None

  let engine_name = function
    | Etcode -> "tcode"
    | Eir -> "ir"
    | Einterp -> "interp"
    | Ematcom -> "matcom"

  let layout_of_string (s : string) : Runtime.Dmat.layout option =
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "block" ] -> Some Runtime.Dmat.Lblock
    | [ "cyclic" ] -> Some (Runtime.Dmat.Lcyclic 1)
    | [ "cyclic"; b ] -> (
        match int_of_string_opt b with
        | Some b when b >= 1 -> Some (Runtime.Dmat.Lcyclic b)
        | _ -> None)
    | [ "grid"; g ] -> (
        match String.split_on_char 'x' g with
        | [ pr; pc ] -> (
            match (int_of_string_opt pr, int_of_string_opt pc) with
            | Some pr, Some pc when pr >= 1 && pc >= 1 ->
                Some (Runtime.Dmat.Lgrid (pr, pc))
            | _ -> None)
        | _ -> None)
    | _ -> None

  let layout_name = function
    | Runtime.Dmat.Lblock -> "block"
    | Runtime.Dmat.Lcyclic b -> Printf.sprintf "cyclic:%d" b
    | Runtime.Dmat.Lgrid (pr, pc) -> Printf.sprintf "grid:%dx%d" pr pc

  let make ?(machine = Mpisim.Machine.meiko_cs2) ?(nprocs = 4)
      ?(engine = default_engine) ?(seed = 42) ?(datadir = ".") ?(capture = [])
      ?(tol = 1e-9) ?(chaos = false) ?(ckpt_interval = 0.)
      ?(max_recoveries = 0) ?(layout = Runtime.Dmat.Lblock) () : t =
    if nprocs < 1 then
      invalid_arg
        (Printf.sprintf "run: need at least one rank, got -p %d" nprocs);
    (* [chaos] is the one-flag shorthand for "survive the fault model":
       it fills in the recovery knobs the caller left at their
       defaults. *)
    let ckpt_interval =
      if ckpt_interval > 0. then ckpt_interval else if chaos then 0.05 else 0.
    in
    let max_recoveries =
      if max_recoveries > 0 then max_recoveries else if chaos then 3 else 0
    in
    {
      machine;
      nprocs;
      engine;
      seed;
      datadir;
      capture;
      tol;
      ckpt_interval;
      max_recoveries;
      layout;
    }
end

let config = Config.make

let interpret (cfg : Config.t) (fe : frontend) =
  let mode =
    match cfg.Config.engine with
    | Config.Ematcom -> Interp.Cost.Matcom
    | _ -> Interp.Cost.Interpreter
  in
  Interp.Eval.run ~capture:cfg.Config.capture ~seed:cfg.Config.seed
    ~datadir:cfg.Config.datadir ~mode ~machine:cfg.Config.machine fe.fe_ast

let dump_ir c = Spmd.Ir_pp.prog_to_string c.prog

let dump_ssa (c : compiled) =
  let script, _ = Analysis.Ssa.convert_script c.ast.Mlang.Ast.script in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Analysis.Ssa_pp.script_to_string script);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Analysis.Ssa_pp.func_to_string (Analysis.Ssa.convert_func f)))
    c.ast.Mlang.Ast.funcs;
  Buffer.contents buf

(* Per-pass statistics table: name, wall-clock, total rewrites, and the
   per-rule breakdown for every pass that ran. *)
let pass_table (records : Spmd.Pass.record list) : string =
  match records with
  | [] -> "passes: none (O0)"
  | rs ->
      let rows =
        List.map
          (fun (r : Spmd.Pass.record) ->
            let detail =
              if r.Spmd.Pass.rewrites = 0 then "-"
              else
                String.concat ", "
                  (List.filter_map
                     (fun (k, n) ->
                       if n = 0 then None else Some (Printf.sprintf "%s %d" k n))
                     r.Spmd.Pass.detail)
            in
            Printf.sprintf "  %-16s %8.3f ms %6d rewrites  %s" r.Spmd.Pass.pass
              (r.Spmd.Pass.seconds *. 1000.)
              r.Spmd.Pass.rewrites detail)
          rs
      in
      String.concat "\n" ("passes:" :: rows)

(* One-paragraph compilation report (otterc compile --stats). *)
let report (c : compiled) : string =
  let insts = ref 0 and comm = ref 0 and elem = ref 0 in
  let count_block b =
    Spmd.Ir.iter_insts
      (fun i ->
        incr insts;
        match i with
        | Spmd.Ir.Imatmul _ | Spmd.Ir.Idot _ | Spmd.Ir.Itranspose _
        | Spmd.Ir.Idiag _ | Spmd.Ir.Iouter _ | Spmd.Ir.Ireduce_all _
        | Spmd.Ir.Ireduce_cols _
        | Spmd.Ir.Inorm _ | Spmd.Ir.Itrapz _ | Spmd.Ir.Ishift _
        | Spmd.Ir.Ibcast _ | Spmd.Ir.Iscan _ | Spmd.Ir.Ireduce_loc _
        | Spmd.Ir.Isection _ | Spmd.Ir.Iconcat _ | Spmd.Ir.Imatmul_t _
        | Spmd.Ir.Ibcast_batch _ | Spmd.Ir.Ireduce_fused _ ->
            incr comm
        | Spmd.Ir.Ielem _ -> incr elem
        | _ -> ())
      b
  in
  count_block c.prog.Spmd.Ir.p_body;
  List.iter (fun (f : Spmd.Ir.func) -> count_block f.f_body) c.prog.Spmd.Ir.p_funcs;
  let scalars = ref 0 and matrices = ref 0 in
  Hashtbl.iter
    (fun _ (t : Ty.t) ->
      if t.Ty.rank = Ty.Rscalar then incr scalars else incr matrices)
    c.info.Analysis.Infer.var_ty;
  String.concat "\n"
    [
      Printf.sprintf "variables: %d scalar (replicated), %d matrix (distributed)"
        !scalars !matrices;
      Printf.sprintf "functions: %d" (List.length c.prog.Spmd.Ir.p_funcs);
      Printf.sprintf
        "IR: %d instructions; %d run-time library calls (communication); %d fused element-wise loops"
        !insts !comm !elem;
      pass_table c.passes;
      "";
    ]

(* --- execution ------------------------------------------------------------ *)

(* A sequential baseline's outcome in the engines' structured shape: a
   one-rank report whose makespan is the modeled sequential time. *)
let outcome_of_interp (o : Interp.Eval.outcome) : Exec.State.outcome =
  let report : Mpisim.Sim.report =
    {
      Mpisim.Sim.makespan = o.Interp.Eval.time;
      per_rank_clock = [| o.Interp.Eval.time |];
      jobs = [];
      messages = 0;
      bytes = 0;
      compute_time = o.Interp.Eval.time;
      drops = 0;
      dups = 0;
      delayed = 0;
      stalls = 0;
      retries = 0;
      acks = 0;
      kills = 0;
      sched_picks = 0;
    }
  in
  {
    Exec.State.output = o.Interp.Eval.output;
    captures =
      List.map
        (fun (name, c) ->
          ( name,
            match c with
            | Interp.Eval.Cscalar x -> Exec.State.Cscalar x
            | Interp.Eval.Cmat (r, cc, d) -> Exec.State.Cmat (r, cc, d)
            | Interp.Eval.Cnd (dims, d) -> Exec.State.Cnd (dims, d) ))
        o.Interp.Eval.captures;
    lib_calls = 0;
    report;
  }

let wrap_result (r : Exec.State.run_result) : Exec.State.recovery =
  let report =
    match r with
    | Exec.State.Complete o -> o.Exec.State.report
    | Exec.State.Partial p -> p.report
  in
  {
    Exec.State.r_result = r;
    r_attempts = 1;
    r_gave_up = false;
    r_reports = [ report ];
    r_penalty = 0.;
  }

(* The one way to execute a compiled program: run it under [cfg]'s
   engine and return the recovery-shaped result (a clean run is one
   attempt with no rollbacks).  The sequential baselines never fail
   partially, so they always come back [Complete]. *)
let run (cfg : Config.t) (c : compiled) : Exec.State.recovery =
  let {
    Config.machine;
    nprocs;
    engine;
    seed;
    datadir;
    capture;
    ckpt_interval;
    max_recoveries;
    layout;
    tol = _;
  } =
    cfg
  in
  match engine with
  | Config.Einterp | Config.Ematcom ->
      let mode =
        if engine = Config.Ematcom then Interp.Cost.Matcom
        else Interp.Cost.Interpreter
      in
      let o = Interp.Eval.run ~capture ~seed ~datadir ~mode ~machine c.ast in
      wrap_result (Exec.State.Complete (outcome_of_interp o))
  | Config.Etcode | Config.Eir ->
      (* The distribution policy is ambient state read at matrix
         creation: set it for the whole parallel run (checkpointed
         replays included) and restore it afterwards. *)
      let saved = !Runtime.Dmat.default_layout in
      Runtime.Dmat.default_layout := layout;
      Fun.protect
        ~finally:(fun () -> Runtime.Dmat.default_layout := saved)
        (fun () ->
          let recovering = ckpt_interval > 0. || max_recoveries > 0 in
          if recovering then
            if engine = Config.Eir then
              Exec.Vm.run_recovering ~capture ~seed ~datadir ~ckpt_interval
                ~max_recoveries ~machine ~nprocs c.prog
            else
              Exec.Tcode.run_recovering ~capture ~seed ~datadir ~ckpt_interval
                ~max_recoveries ~machine ~nprocs c.prog
          else
            wrap_result
              (if engine = Config.Eir then
                 Exec.Vm.run_result ~capture ~seed ~datadir ~machine ~nprocs
                   c.prog
               else
                 Exec.Tcode.run_result ~capture ~seed ~datadir ~machine ~nprocs
                   c.prog))

(* The outcome of a recovery, or [Exec.Vm.Runtime_error] if the final
   attempt still failed — the raising entry point most callers want. *)
let outcome_exn (rc : Exec.State.recovery) : Exec.State.outcome =
  match rc.Exec.State.r_result with
  | Exec.State.Complete o -> o
  | Exec.State.Partial { detail; _ } -> raise (Exec.State.Runtime_error detail)

(* --- cross-back-end verification ---------------------------------------- *)

type mismatch = {
  variable : string;
  detail : string;
}

let compare_values ~tol (a : Interp.Eval.captured) (b : Exec.Vm.captured) :
    string option =
  let close x y =
    x = y (* covers equal infinities *)
    || (Float.is_nan x && Float.is_nan y)
    ||
    let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
    Float.abs (x -. y) <= tol *. scale
  in
  match (a, b) with
  | Interp.Eval.Cscalar x, Exec.Vm.Cscalar y ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | Interp.Eval.Cscalar x, Exec.Vm.Cmat (1, 1, [| y |]) ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | Interp.Eval.Cmat (r1, c1, d1), Exec.Vm.Cmat (r2, c2, d2) ->
      if r1 <> r2 || c1 <> c2 then
        Some (Printf.sprintf "shape %dx%d vs %dx%d" r1 c1 r2 c2)
      else begin
        let bad = ref None in
        Array.iteri
          (fun i x ->
            if !bad = None && not (close x d2.(i)) then
              bad := Some (Printf.sprintf "element %d: %g vs %g" i x d2.(i)))
          d1;
        !bad
      end
  | Interp.Eval.Cmat (1, 1, [| x |]), Exec.Vm.Cscalar y ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | Interp.Eval.Cnd (d1, a1), Exec.Vm.Cnd (d2, a2) ->
      if d1 <> d2 then
        let show d =
          String.concat "x" (Array.to_list (Array.map string_of_int d))
        in
        Some (Printf.sprintf "dims %s vs %s" (show d1) (show d2))
      else begin
        let bad = ref None in
        Array.iteri
          (fun i x ->
            if !bad = None && not (close x a2.(i)) then
              bad := Some (Printf.sprintf "element %d: %g vs %g" i x a2.(i)))
          a1;
        !bad
      end
  | Interp.Eval.Cscalar x, Exec.Vm.Cnd (_, [| y |]) ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | Interp.Eval.Cnd (_, [| x |]), Exec.Vm.Cscalar y ->
      if close x y then None else Some (Printf.sprintf "%g vs %g" x y)
  | _ -> Some "rank mismatch"

type verdict =
  | Verified
  | Mismatched of mismatch list
  | Aborted of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : Exec.Vm.failure_kind;
      report : Mpisim.Sim.report;
      recoveries : int;
    }

(* Every inferred script variable, for verify's default capture set. *)
let all_variables (c : compiled) : string list =
  Hashtbl.fold (fun name _ acc -> name :: acc) c.info.Analysis.Infer.var_ty []
  |> List.sort_uniq compare

(* Run the reference interpreter and the compiled program under [cfg]
   and compare the captured variables (within [cfg.tol], which absorbs
   reduction-order rounding).  An empty [cfg.capture] means "every
   inferred script variable".  The parallel leg uses [cfg]'s engine (a
   sequential engine is promoted to the default SPMD engine — verifying
   the interpreter against itself proves nothing).  When the parallel
   run dies — e.g. under an injected fault model without the reliable
   layer — the verdict is a structured [Aborted] naming the failing
   rank and operation rather than an exception.  Nonzero
   [cfg.ckpt_interval]/[cfg.max_recoveries] route the parallel run
   through the checkpoint/rollback driver, so a verdict of [Verified]
   can also mean "failed, recovered, and still bit-compatible with the
   reference". *)
let verify (cfg : Config.t) (c : compiled) : verdict =
  let capture =
    match cfg.Config.capture with [] -> all_variables c | cs -> cs
  in
  let engine =
    match cfg.Config.engine with
    | Config.Einterp | Config.Ematcom -> Config.default_engine
    | e -> e
  in
  let cfg = { cfg with Config.capture; engine } in
  let ref_run =
    Interp.Eval.run ~capture ~seed:cfg.Config.seed ~datadir:cfg.Config.datadir
      ~mode:Interp.Cost.Interpreter ~machine:cfg.Config.machine c.ast
  in
  let rc = run cfg c in
  let recoveries = rc.Exec.State.r_attempts - 1 in
  match rc.Exec.State.r_result with
  | Exec.Vm.Partial { failed_rank; operation; detail; kind; report } ->
      Aborted { failed_rank; operation; detail; kind; report; recoveries }
  | Exec.Vm.Complete par_run -> (
      let mismatches =
        List.filter_map
          (fun name ->
            match
              ( List.assoc_opt name ref_run.Interp.Eval.captures,
                List.assoc_opt name par_run.Exec.Vm.captures )
            with
            | Some a, Some b -> (
                match compare_values ~tol:cfg.Config.tol a b with
                | None -> None
                | Some detail -> Some { variable = name; detail })
            | None, None ->
                (* Absent from both runs (e.g. the index variable of a
                   zero-trip loop, or a non-numeric value neither back
                   end captures): the runs agree, so this is clean. *)
                None
            | None, _ ->
                Some { variable = name; detail = "missing in interpreter" }
            | _, None ->
                Some { variable = name; detail = "missing in compiled run" })
          capture
      in
      match mismatches with [] -> Verified | ms -> Mismatched ms)

let verify_list (cfg : Config.t) (c : compiled) : mismatch list =
  match verify cfg c with
  | Verified -> []
  | Mismatched ms -> ms
  | Aborted { detail; _ } -> raise (Exec.Vm.Runtime_error detail)

(* The multi-tenant space-sharing scheduler, re-exported so library
   users reach it as [Otter.Sched]. *)
module Sched = Sched
