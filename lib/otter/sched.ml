(* Multi-tenant space-sharing scheduler.

   The machine is a row of P rank slots; a job is a script plus a rank
   count.  Jobs are placed in submission order into the earliest
   contiguous block that fits (lowest base rank on ties) — the
   space-shared partitioning of the MPP era, which keeps every tenant's
   ranks adjacent and the placement a pure function of the job list.

   Each job simulates on its own private ranks ([Sim.run] nested per
   job), so tenants cannot exchange messages; what they share is the
   machine's capacity, modeled by the block's availability time.  The
   aggregate report sums traffic and fault counters across tenants and
   carries one [Sim.job_stat] row per job, which is what the
   throughput bench gates on. *)

module Sim = Mpisim.Sim
module Machine = Mpisim.Machine

type job = {
  j_name : string;
  j_procs : int;
  j_run : nprocs:int -> Sim.report;
}

type placement = {
  p_name : string;
  p_first_rank : int;
  p_procs : int;
  p_start : float;
  p_finish : float;
  p_report : Sim.report;
}

type schedule = {
  s_placements : placement list;
  s_makespan : float;
  s_throughput : float;
  s_report : Sim.report;
}

let run ~machine ~procs (jobs : job list) : schedule =
  if procs < 1 then invalid_arg "Sched.run: need at least one rank";
  if procs > machine.Machine.max_procs then
    invalid_arg
      (Printf.sprintf "Sched.run: %s has at most %d processors"
         machine.Machine.name machine.Machine.max_procs);
  let free = Array.make procs 0. in
  let place (j : job) : placement =
    if j.j_procs < 1 then
      invalid_arg
        (Printf.sprintf "Sched.run: job '%s' asks for no ranks" j.j_name);
    if j.j_procs > procs then
      invalid_arg
        (Printf.sprintf "Sched.run: job '%s' wants %d of %d ranks" j.j_name
           j.j_procs procs);
    (* Earliest contiguous block; strict improvement keeps the lowest
       base on ties, so placement is deterministic. *)
    let best_base = ref 0 and best_start = ref infinity in
    for base = 0 to procs - j.j_procs do
      let start = ref 0. in
      for r = base to base + j.j_procs - 1 do
        if free.(r) > !start then start := free.(r)
      done;
      if !start < !best_start then begin
        best_start := !start;
        best_base := base
      end
    done;
    let base = !best_base and start = !best_start in
    let report = j.j_run ~nprocs:j.j_procs in
    let finish = start +. report.Sim.makespan in
    for r = base to base + j.j_procs - 1 do
      free.(r) <- finish
    done;
    {
      p_name = j.j_name;
      p_first_rank = base;
      p_procs = j.j_procs;
      p_start = start;
      p_finish = finish;
      p_report = report;
    }
  in
  let placements = List.map place jobs in
  let makespan = Array.fold_left Float.max 0. free in
  let sum f =
    List.fold_left (fun acc p -> acc + f p.p_report) 0 placements
  in
  let sumf f =
    List.fold_left (fun acc p -> acc +. f p.p_report) 0. placements
  in
  let job_rows =
    List.map
      (fun p ->
        {
          Sim.job_name = p.p_name;
          job_first_rank = p.p_first_rank;
          job_procs = p.p_procs;
          job_start = p.p_start;
          job_finish = p.p_finish;
          job_messages = p.p_report.Sim.messages;
          job_bytes = p.p_report.Sim.bytes;
        })
      placements
  in
  let report =
    {
      Sim.makespan;
      per_rank_clock = Array.copy free;
      jobs = job_rows;
      messages = sum (fun r -> r.Sim.messages);
      bytes = sum (fun r -> r.Sim.bytes);
      compute_time = sumf (fun r -> r.Sim.compute_time);
      drops = sum (fun r -> r.Sim.drops);
      dups = sum (fun r -> r.Sim.dups);
      delayed = sum (fun r -> r.Sim.delayed);
      stalls = sum (fun r -> r.Sim.stalls);
      retries = sum (fun r -> r.Sim.retries);
      acks = sum (fun r -> r.Sim.acks);
      kills = sum (fun r -> r.Sim.kills);
      sched_picks = sum (fun r -> r.Sim.sched_picks);
    }
  in
  let throughput =
    if makespan > 0. then float_of_int (List.length jobs) /. makespan else 0.
  in
  {
    s_placements = placements;
    s_makespan = makespan;
    s_throughput = throughput;
    s_report = report;
  }

let table (s : schedule) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "  %-24s %-7s %10s %10s %9s %10s\n" "job" "ranks"
       "start" "finish" "messages" "bytes");
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "  %-24s %3d-%-3d %10.4f %10.4f %9d %10d\n" p.p_name
           p.p_first_rank
           (p.p_first_rank + p.p_procs - 1)
           p.p_start p.p_finish p.p_report.Sim.messages
           p.p_report.Sim.bytes))
    s.s_placements;
  Buffer.add_string b
    (Printf.sprintf "  %d jobs in %.4f s: %.1f jobs/s\n"
       (List.length s.s_placements)
       s.s_makespan s.s_throughput);
  Buffer.contents b
