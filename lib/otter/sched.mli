(** Multi-tenant job scheduler: space-share the ranks of one simulated
    machine across many concurrent scripts.

    Each job asks for a block of ranks; the scheduler assigns the
    earliest-available contiguous block (FIFO submission order, lowest
    base rank on ties), runs the job's script on its own ranks, and
    accounts the tenancy — who ran where, when, and what traffic it
    generated — in a machine-level {!Mpisim.Sim.report} whose [jobs]
    rows carry the per-tenant numbers.  Deterministic: the same job
    list on the same machine always produces the same schedule. *)

type job = {
  j_name : string;
  j_procs : int;  (** ranks requested; must fit the machine *)
  j_run : nprocs:int -> Mpisim.Sim.report;
      (** execute the job's script on [nprocs] ranks and report; the
          caller closes over its compiled program and run config *)
}

type placement = {
  p_name : string;
  p_first_rank : int;  (** base of the assigned contiguous block *)
  p_procs : int;
  p_start : float;  (** virtual time the block became available *)
  p_finish : float;  (** [p_start] + the job's makespan *)
  p_report : Mpisim.Sim.report;  (** the job's own run report *)
}

type schedule = {
  s_placements : placement list;  (** submission order *)
  s_makespan : float;  (** when the last job finished *)
  s_throughput : float;  (** jobs per simulated second *)
  s_report : Mpisim.Sim.report;
      (** machine-level aggregate: summed traffic and fault counters,
          final per-rank clocks, and one [jobs] row per tenant *)
}

val run : machine:Mpisim.Machine.t -> procs:int -> job list -> schedule
(** Space-share [procs] ranks of [machine] over the job list.  Raises
    [Invalid_argument] if [procs] exceeds the machine or a job asks
    for more ranks than the machine has. *)

val table : schedule -> string
(** The schedule as a human-readable table (one row per tenant plus a
    throughput summary line), shared by [otterc serve] and the bench. *)
