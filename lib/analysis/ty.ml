(* The lattice now lives in [Mlang.Ty] so that AST annotations can carry
   types directly on the tree; this alias keeps the historical
   [Analysis.Ty] path working for every downstream consumer. *)

include Mlang.Ty
