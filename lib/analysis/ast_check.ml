(* Structural invariants of the annotated AST.

   [errors] walks a program after resolution (and normally after type
   inference) and reports every violation of the annotation discipline
   documented in [Mlang.Ast]:

   - resolution is total: no [Ident] or [Apply] node survives; every
     name became a [Varref], [Call] or [Index];
   - annotation ids track value identity: two nodes may carry the same
     id only by sharing the same physical [ann] record (the
     [{ e with node = ... }] copy rule);
   - a [Known] scalar type carries the canonical 1x1 shape;
   - a frame lift is recorded only on a node whose own type is a
     tensor, and never exceeds that tensor's frame axes.

   [Otter.compile] and [Otter.compile_frontend] run [validate] on every
   program they build, so the whole tier-1 suite doubles as a stress
   test of these invariants. *)

open Mlang

let errors (p : Ast.program) : string list =
  let errs = ref [] in
  let seen : (int, Ast.ann) Hashtbl.t = Hashtbl.create 64 in
  let err pos fmt =
    Fmt.kstr
      (fun msg -> errs := Fmt.str "%a: %s" Source.pp_pos pos msg :: !errs)
      fmt
  in
  let check_expr (e : Ast.expr) =
    let a = e.ann in
    (match Hashtbl.find_opt seen a.id with
    | Some prior when prior != a ->
        err a.pos "annotation id %d reused by a distinct record" a.id
    | _ -> Hashtbl.replace seen a.id a);
    (match e.node with
    | Ast.Ident name ->
        err a.pos "unresolved identifier '%s' survived resolution" name
    | Ast.Apply (name, _) ->
        err a.pos "unresolved application '%s' survived resolution" name
    | _ -> ());
    (match a.ty with
    | Ty.Known t
      when Ty.is_scalar t
           && not
                (Ty.equal_dim t.Ty.shape.Ty.rows (Ty.Dconst 1)
                && Ty.equal_dim t.Ty.shape.Ty.cols (Ty.Dconst 1)) ->
        err a.pos "scalar type %s has a non-1x1 shape" (Ty.to_string t)
    | _ -> ());
    if a.frame > 0 then
      match a.ty with
      | Ty.Known t when Ty.is_tensor t ->
          if a.frame > Ty.frame_axes t then
            err a.pos "frame lift %d exceeds the %d frame axes of %s" a.frame
              (Ty.frame_axes t) (Ty.to_string t)
      | Ty.Known t ->
          err a.pos "frame lift %d on non-tensor %s" a.frame (Ty.to_string t)
      | Ty.Bottom -> err a.pos "frame lift %d on an untyped node" a.frame
  in
  let check_block b = Ast.iter_exprs check_expr b in
  check_block p.Ast.script;
  List.iter (fun (f : Ast.func) -> check_block f.fbody) p.Ast.funcs;
  List.rev !errs

exception Invalid of string

(* Raise on the first violation; compiler-internal, so the message is
   aimed at the compiler developer, not the MATLAB author. *)
let validate (p : Ast.program) =
  match errors p with
  | [] -> ()
  | first :: _ as all ->
      raise
        (Invalid
           (Fmt.str "AST invariants violated (%d): %s" (List.length all) first))
