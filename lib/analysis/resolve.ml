(* Identifier resolution (paper section 3, pass 2).

   Starting from the script, decides for every name whether it denotes a
   variable or a function, rewriting [Ident]/[Apply] nodes into
   [Varref]/[Index]/[Call].  User M-file functions reachable from the
   script are looked up through [path], resolved recursively, and added
   to the program, so that after this pass the whole user program is in
   one AST.  Functions are *not* inlined (paper: this keeps the emitted
   C small at the cost of harder type propagation).

   Variables shadow functions, and user functions shadow builtins, as in
   MATLAB.  Node ids are preserved: a rewritten node denotes the same
   value as the original. *)

open Mlang

type ctx = {
  path : string -> Ast.func option;
  input_funcs : (string, Ast.func) Hashtbl.t;
  resolved : (string, Ast.func) Hashtbl.t;
  mutable order : string list; (* reverse order of resolution *)
}

let is_function ctx name =
  Hashtbl.mem ctx.resolved name
  || Hashtbl.mem ctx.input_funcs name
  || ctx.path name <> None
  || Builtins.is_builtin name

let rec resolve_expr ctx vars (e : Ast.expr) : Ast.expr =
  let re = resolve_expr ctx vars in
  match e.node with
  | Ast.Num _ | Ast.Str _ | Ast.Colon | Ast.End_marker | Ast.Varref _ -> e
  | Ast.Ident name ->
      if Hashtbl.mem vars name then { e with node = Ast.Varref name }
      else if is_function ctx name then begin
        ensure_function ctx name e.ann.pos;
        { e with node = Ast.Call (name, []) }
      end
      else Source.error e.ann.pos "undefined variable or function '%s'" name
  | Ast.Apply (name, args) ->
      let args = List.map re args in
      if Hashtbl.mem vars name then { e with node = Ast.Index (name, args) }
      else if is_function ctx name then begin
        ensure_function ctx name e.ann.pos;
        { e with node = Ast.Call (name, args) }
      end
      else Source.error e.ann.pos "undefined variable or function '%s'" name
  | Ast.Call (name, args) -> { e with node = Ast.Call (name, List.map re args) }
  | Ast.Index (name, args) -> { e with node = Ast.Index (name, List.map re args) }
  | Ast.Binop (op, a, b) -> { e with node = Ast.Binop (op, re a, re b) }
  | Ast.Unop (op, a) -> { e with node = Ast.Unop (op, re a) }
  | Ast.Range (a, step, b) ->
      { e with node = Ast.Range (re a, Option.map re step, re b) }
  | Ast.Matrix rows -> { e with node = Ast.Matrix (List.map (List.map re) rows) }

and resolve_lhs ctx vars (l : Ast.lhs) : Ast.lhs =
  match l.lv_indices with
  | None -> l
  | Some args ->
      if not (Hashtbl.mem vars l.lv_name) then
        Source.error l.lv_pos "indexed assignment to undefined variable '%s'"
          l.lv_name;
      { l with lv_indices = Some (List.map (resolve_expr ctx vars) args) }

and resolve_stmt ctx vars (s : Ast.stmt) : Ast.stmt =
  match s.sdesc with
  | Ast.Assign (l, rhs, display) ->
      let rhs = resolve_expr ctx vars rhs in
      let l = resolve_lhs ctx vars l in
      Hashtbl.replace vars l.Ast.lv_name ();
      { s with sdesc = Ast.Assign (l, rhs, display) }
  | Ast.Multi_assign (ls, rhs, display) ->
      let rhs = resolve_expr ctx vars rhs in
      (match rhs.node with
      | Ast.Call _ -> ()
      | _ ->
          Source.error s.spos
            "multiple assignment requires a function call on the right");
      let ls = List.map (resolve_lhs ctx vars) ls in
      List.iter (fun l -> Hashtbl.replace vars l.Ast.lv_name ()) ls;
      { s with sdesc = Ast.Multi_assign (ls, rhs, display) }
  | Ast.Expr (e, display) ->
      { s with sdesc = Ast.Expr (resolve_expr ctx vars e, display) }
  | Ast.If (branches, els) ->
      let branches =
        List.map
          (fun (c, b) ->
            let c = resolve_expr ctx vars c in
            (c, resolve_block ctx vars b))
          branches
      in
      { s with sdesc = Ast.If (branches, resolve_block ctx vars els) }
  | Ast.While (c, b) ->
      let c = resolve_expr ctx vars c in
      { s with sdesc = Ast.While (c, resolve_block ctx vars b) }
  | Ast.For (v, range, b) ->
      let range = resolve_expr ctx vars range in
      Hashtbl.replace vars v ();
      { s with sdesc = Ast.For (v, range, resolve_block ctx vars b) }
  | Ast.Break | Ast.Continue | Ast.Return -> s

and resolve_block ctx vars b = List.map (resolve_stmt ctx vars) b

(* Resolve a user function's body once, keying a placeholder first so
   that direct or mutual recursion terminates. *)
and ensure_function ctx name pos =
  if Builtins.is_builtin name && not (Hashtbl.mem ctx.input_funcs name)
     && ctx.path name = None
  then () (* plain builtin: nothing to pull in *)
  else if not (Hashtbl.mem ctx.resolved name) then begin
    let f =
      match Hashtbl.find_opt ctx.input_funcs name with
      | Some f -> f
      | None -> (
          match ctx.path name with
          | Some f -> f
          | None -> Source.error pos "cannot find function '%s'" name)
    in
    Hashtbl.add ctx.resolved name f;
    let vars = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.replace vars p ()) f.Ast.params;
    let body = resolve_block ctx vars f.Ast.fbody in
    List.iter
      (fun r ->
        if not (Hashtbl.mem vars r) then
          Source.error Source.no_pos
            "function '%s': return value '%s' is never assigned" name r)
      f.Ast.returns;
    Hashtbl.replace ctx.resolved name { f with Ast.fbody = body };
    ctx.order <- name :: ctx.order
  end

let run ?(path = fun _ -> None) (p : Ast.program) : Ast.program =
  let input_funcs = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace input_funcs f.Ast.fname f) p.funcs;
  let ctx = { path; input_funcs; resolved = Hashtbl.create 8; order = [] } in
  let vars = Hashtbl.create 16 in
  let script = resolve_block ctx vars p.script in
  (* Functions present in the file but never referenced are still
     resolved, so the whole file is checked. *)
  List.iter (fun f -> ensure_function ctx f.Ast.fname Source.no_pos) p.funcs;
  let funcs =
    List.rev_map (fun name -> Hashtbl.find ctx.resolved name) ctx.order
  in
  { Ast.script; funcs }
