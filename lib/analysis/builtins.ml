(* Registry of the built-in MATLAB functions Otter implements.

   Each builtin carries a classification used by the expression-rewriting
   pass (does a call become an element-wise loop, a reduction needing an
   allreduce, a constructor, ...) and a type rule used by inference.
   Type rules operate on abstract values: a type plus, for scalars, an
   optional compile-time constant -- constants feed shape inference
   (e.g. [n = 2048; zeros(n, 1)] yields a known 2048x1 shape). *)

type aval = { aty : Ty.t; aconst : float option }

let of_ty aty = { aty; aconst = None }
let const_int n = { aty = Ty.int_scalar; aconst = Some (float_of_int n) }
let const_real f = { aty = Ty.real_scalar; aconst = Some f }

type kind =
  | Map1 of string (* element-wise unary function *)
  | Map2 of string (* element-wise binary function *)
  | Reduce of string (* reduction: vector -> scalar, matrix -> row vector *)
  | Scan of string (* cumulative sum/product along a vector *)
  | Dot (* dot(u, v) *)
  | Minmax of string (* reduction with 1 arg, element-wise with 2 *)
  | Constructor of string (* zeros, ones, eye, rand, linspace *)
  | Query of string (* size, length, numel *)
  | Trapz (* trapezoidal integration *)
  | Shift (* circshift *)
  | Output of string (* disp, fprintf *)
  | Constant of float (* pi, eps *)
  | Error_fn (* error('message') *)
  | Load (* load('file.txt'): matrix from a whitespace-separated file *)
  | Repmat (* repmat(A, r, c): tile a matrix *)
  | Sort (* sort(v): ascending sort, optional index output *)
  | Diag (* diag(v): vector -> diagonal matrix; matrix -> diagonal vector *)
  | Mpi of mpi_op (* MatlabMPI-style explicit message passing *)

and mpi_op =
  | Mrank (* MPI_Comm_rank() *)
  | Msize (* MPI_Comm_size() *)
  | Msend (* MPI_Send(dest, tag, value) *)
  | Mrecv (* MPI_Recv(source, tag) *)
  | Mbcast (* MPI_Bcast(root, value) *)
  | Mprobe (* MPI_Probe(source, tag) *)

type t = {
  name : string;
  kind : kind;
  min_args : int;
  max_args : int; (* max_int for variadic *)
  infer : aval list -> Mlang.Source.pos -> aval;
}

(* --- type-rule helpers ------------------------------------------------ *)

let dim_of_arg (a : aval) =
  match a.aconst with
  | Some f when f >= 0. && Float.is_integer f -> Ty.Dconst (int_of_float f)
  | Some _ | None -> Ty.Dunknown

(* All the dimensions of a value, leading (frame) axes first; None when
   the value is a scalar (whose dims are trivially 1). *)
let all_dims (t : Ty.t) =
  match t.Ty.rank with
  | Ty.Rscalar -> None
  | Ty.Rmatrix -> Some [ t.Ty.shape.Ty.rows; t.Ty.shape.Ty.cols ]
  | Ty.Rtensor outer -> Some (outer @ [ t.Ty.shape.Ty.rows; t.Ty.shape.Ty.cols ])

let const_dims dims =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Ty.Dconst n :: rest -> go (n :: acc) rest
    | Ty.Dunknown :: _ -> None
  in
  go [] dims

(* Builtins whose lowering has no tensor path reject tensor arguments at
   compile time rather than failing inside an engine. *)
let no_tensor name args pos =
  List.iter
    (fun a ->
      if Ty.is_tensor a.aty then
        Mlang.Source.error pos "%s of a tensor is not supported" name)
    args

let fold1 f (a : aval) base =
  let aconst =
    match a.aconst with
    | Some x when a.aty.Ty.rank = Ty.Rscalar -> Some (f x)
    | Some _ | None -> None
  in
  { aty = { a.aty with Ty.base }; aconst }

(* Unary element-wise rule: result has the argument's rank and shape. *)
let map1_rule ?(result_base = fun _ -> Ty.Real) f args pos =
  match args with
  | [ a ] -> fold1 f a (result_base a.aty.Ty.base)
  | _ -> Mlang.Source.error pos "wrong number of arguments"

let preserve_int_base = function Ty.Integer -> Ty.Integer | b -> b

let map2_rule f args pos =
  match args with
  | [ a; b ] ->
      let ty =
        Ty.elementwise_result
          (fun x y -> preserve_int_base (Ty.join_base x y))
          a.aty b.aty
      in
      let aconst =
        match (a.aconst, b.aconst, ty.Ty.rank) with
        | Some x, Some y, Ty.Rscalar -> Some (f x y)
        | _ -> None
      in
      { aty = ty; aconst }
  | _ -> Mlang.Source.error pos "wrong number of arguments"

(* Reduction rule: vector -> scalar; matrix -> 1 x cols row vector.
   A matrix of unknown shape is optimistically treated as a vector, a
   choice the run time checks. *)
let reduce_rule ?(result_base = fun b -> b) args pos =
  match args with
  | [ a ] ->
      let base = result_base a.aty.Ty.base in
      if Ty.is_scalar a.aty then { aty = Ty.scalar base; aconst = a.aconst }
      else if Ty.is_tensor a.aty then
        (* tensors reduce fully to a scalar (documented divergence from
           MATLAB's dim-1 reduction) *)
        of_ty (Ty.scalar base)
      else if Ty.is_vector a.aty || a.aty.Ty.shape = Ty.unknown_shape then
        of_ty (Ty.scalar base)
      else
        of_ty
          (Ty.matrix ~shape:{ Ty.rows = Ty.Dconst 1; cols = a.aty.Ty.shape.Ty.cols }
             base)
  | _ -> Mlang.Source.error pos "reduction takes one argument"

let constructor_rule ~square ~base args _pos =
  match args with
  | [] -> of_ty (Ty.scalar base)
  | [ n ] ->
      let d = dim_of_arg n in
      let shape =
        if square then { Ty.rows = d; cols = d }
        else { Ty.rows = Ty.Dconst 1; cols = d }
      in
      of_ty (Ty.matrix ~shape base)
  | [ r; c ] ->
      of_ty (Ty.matrix ~shape:{ Ty.rows = dim_of_arg r; cols = dim_of_arg c } base)
  | [ p; r; c ] ->
      (* three size arguments build a rank-3 tensor: pages x rows x cols *)
      of_ty
        (Ty.tensor ~outer:[ dim_of_arg p ]
           ~shape:{ Ty.rows = dim_of_arg r; cols = dim_of_arg c }
           base)
  | _ -> of_ty (Ty.matrix base)

let int_scalar_rule _args _pos = of_ty Ty.int_scalar

let table : (string, t) Hashtbl.t = Hashtbl.create 64

let register name kind min_args max_args infer =
  Hashtbl.replace table name { name; kind; min_args; max_args; infer }

let () =
  let real_of _ = Ty.Real in
  let keep b = b in
  (* element-wise unary *)
  register "abs" (Map1 "abs") 1 1 (map1_rule ~result_base:keep Float.abs);
  register "sqrt" (Map1 "sqrt") 1 1 (map1_rule ~result_base:real_of sqrt);
  register "exp" (Map1 "exp") 1 1 (map1_rule ~result_base:real_of exp);
  register "log" (Map1 "log") 1 1 (map1_rule ~result_base:real_of log);
  register "log10" (Map1 "log10") 1 1 (map1_rule ~result_base:real_of log10);
  register "log2" (Map1 "log2") 1 1
    (map1_rule ~result_base:real_of (fun x -> log x /. log 2.));
  register "sin" (Map1 "sin") 1 1 (map1_rule ~result_base:real_of sin);
  register "cos" (Map1 "cos") 1 1 (map1_rule ~result_base:real_of cos);
  register "tan" (Map1 "tan") 1 1 (map1_rule ~result_base:real_of tan);
  register "asin" (Map1 "asin") 1 1 (map1_rule ~result_base:real_of asin);
  register "acos" (Map1 "acos") 1 1 (map1_rule ~result_base:real_of acos);
  register "atan" (Map1 "atan") 1 1 (map1_rule ~result_base:real_of atan);
  register "tanh" (Map1 "tanh") 1 1 (map1_rule ~result_base:real_of tanh);
  register "cosh" (Map1 "cosh") 1 1 (map1_rule ~result_base:real_of cosh);
  register "sinh" (Map1 "sinh") 1 1 (map1_rule ~result_base:real_of sinh);
  register "floor" (Map1 "floor") 1 1
    (map1_rule ~result_base:(fun _ -> Ty.Integer) floor);
  register "ceil" (Map1 "ceil") 1 1
    (map1_rule ~result_base:(fun _ -> Ty.Integer) ceil);
  register "round" (Map1 "round") 1 1
    (map1_rule ~result_base:(fun _ -> Ty.Integer) Float.round);
  register "fix" (Map1 "fix") 1 1
    (map1_rule ~result_base:(fun _ -> Ty.Integer) Float.trunc);
  register "sign" (Map1 "sign") 1 1
    (map1_rule
       ~result_base:(fun _ -> Ty.Integer)
       (fun x -> if x > 0. then 1. else if x < 0. then -1. else 0.));
  register "double" (Map1 "double") 1 1
    (map1_rule ~result_base:real_of (fun x -> x));
  (* element-wise binary *)
  register "mod" (Map2 "mod") 2 2
    (map2_rule (fun a b -> if b = 0. then a else a -. (b *. Float.floor (a /. b))));
  register "rem" (Map2 "rem") 2 2
    (map2_rule (fun a b -> if b = 0. then a else Float.rem a b));
  register "atan2" (Map2 "atan2") 2 2 (map2_rule atan2);
  register "hypot" (Map2 "hypot") 2 2 (map2_rule Float.hypot);
  register "power" (Map2 "pow") 2 2 (map2_rule Float.pow);
  (* reductions *)
  register "sum" (Reduce "sum") 1 1 (reduce_rule ~result_base:keep);
  register "cumsum" (Scan "cumsum") 1 1 (fun args pos ->
      no_tensor "cumsum" args pos;
      match args with
      | [ a ] -> { a with aconst = None }
      | _ -> Mlang.Source.error pos "cumsum takes one argument");
  register "cumprod" (Scan "cumprod") 1 1 (fun args pos ->
      no_tensor "cumprod" args pos;
      match args with
      | [ a ] -> { a with aconst = None }
      | _ -> Mlang.Source.error pos "cumprod takes one argument");
  register "prod" (Reduce "prod") 1 1 (reduce_rule ~result_base:keep);
  register "mean" (Reduce "mean") 1 1 (reduce_rule ~result_base:real_of);
  register "norm" (Reduce "norm") 1 1 (fun args pos ->
      no_tensor "norm" args pos;
      ignore (reduce_rule args pos);
      of_ty Ty.real_scalar);
  register "any" (Reduce "any") 1 1 (fun _ _ -> of_ty Ty.int_scalar);
  register "all" (Reduce "all") 1 1 (fun _ _ -> of_ty Ty.int_scalar);
  register "dot" Dot 2 2 (fun args pos ->
      no_tensor "dot" args pos;
      of_ty Ty.real_scalar);
  register "min" (Minmax "min") 1 2 (fun args pos ->
      match args with
      | [ _ ] -> reduce_rule ~result_base:keep args pos
      | _ -> map2_rule Float.min args pos);
  register "max" (Minmax "max") 1 2 (fun args pos ->
      match args with
      | [ _ ] -> reduce_rule ~result_base:keep args pos
      | _ -> map2_rule Float.max args pos);
  (* constructors *)
  register "zeros" (Constructor "zeros") 0 3
    (constructor_rule ~square:true ~base:Ty.Real);
  register "ones" (Constructor "ones") 0 3
    (constructor_rule ~square:true ~base:Ty.Real);
  register "rand" (Constructor "rand") 0 3
    (constructor_rule ~square:true ~base:Ty.Real);
  register "randn" (Constructor "randn") 0 3
    (constructor_rule ~square:true ~base:Ty.Real);
  register "eye" (Constructor "eye") 1 2
    (constructor_rule ~square:true ~base:Ty.Real);
  register "linspace" (Constructor "linspace") 3 3 (fun args pos ->
      match args with
      | [ _; _; n ] ->
          of_ty
            (Ty.matrix
               ~shape:{ Ty.rows = Ty.Dconst 1; cols = dim_of_arg n }
               Ty.Real)
      | _ -> Mlang.Source.error pos "linspace takes three arguments");
  (* queries *)
  register "size" (Query "size") 1 2 (fun args _ ->
      match args with
      | [ a ] ->
          let n = max 2 (Ty.total_rank a.aty) in
          of_ty
            (Ty.matrix
               ~shape:{ Ty.rows = Ty.Dconst 1; cols = Ty.Dconst n }
               Ty.Integer)
      | _ -> of_ty Ty.int_scalar);
  register "length" (Query "length") 1 1 (fun args _ ->
      match args with
      | [ a ] -> (
          match all_dims a.aty with
          | None -> const_int 1
          | Some dims -> (
              match const_dims dims with
              | Some ns -> const_int (List.fold_left max 0 ns)
              | None -> of_ty Ty.int_scalar))
      | _ -> of_ty Ty.int_scalar);
  register "numel" (Query "numel") 1 1 (fun args _ ->
      match args with
      | [ a ] -> (
          match all_dims a.aty with
          | None -> const_int 1
          | Some dims -> (
              match const_dims dims with
              | Some ns -> const_int (List.fold_left ( * ) 1 ns)
              | None -> of_ty Ty.int_scalar))
      | _ -> of_ty Ty.int_scalar);
  (* communication-bearing library functions *)
  register "trapz" Trapz 1 2 (fun args pos ->
      no_tensor "trapz" args pos;
      of_ty Ty.real_scalar);
  register "circshift" Shift 2 2 (fun args pos ->
      no_tensor "circshift" args pos;
      match args with
      | [ a; _ ] -> of_ty a.aty
      | _ -> Mlang.Source.error pos "circshift takes two arguments");
  (* output and diagnostics *)
  register "disp" (Output "disp") 1 1 int_scalar_rule;
  register "fprintf" (Output "fprintf") 1 max_int int_scalar_rule;
  register "error" Error_fn 1 1 int_scalar_rule;
  register "repmat" Repmat 3 3 (fun args pos ->
      no_tensor "repmat" args pos;
      match args with
      | [ a; r; c ] -> (
          match (dim_of_arg r, dim_of_arg c, a.aty.Ty.rank) with
          | Ty.Dconst rr, Ty.Dconst cc, Ty.Rscalar ->
              of_ty
                (Ty.matrix
                   ~shape:{ Ty.rows = Ty.Dconst rr; cols = Ty.Dconst cc }
                   a.aty.Ty.base)
          | Ty.Dconst rr, Ty.Dconst cc, Ty.Rmatrix -> (
              match a.aty.Ty.shape with
              | { Ty.rows = Ty.Dconst m; cols = Ty.Dconst n } ->
                  of_ty
                    (Ty.matrix
                       ~shape:{ Ty.rows = Ty.Dconst (rr * m); cols = Ty.Dconst (cc * n) }
                       a.aty.Ty.base)
              | _ -> of_ty (Ty.matrix a.aty.Ty.base))
          | _ -> of_ty (Ty.matrix a.aty.Ty.base))
      | _ -> Mlang.Source.error pos "repmat takes three arguments");
  register "sort" Sort 1 1 (fun args pos ->
      no_tensor "sort" args pos;
      match args with
      | [ a ] -> { a with aconst = None }
      | _ -> Mlang.Source.error pos "sort takes one argument");
  register "diag" Diag 1 1 (fun args pos ->
      no_tensor "diag" args pos;
      match args with
      | [ a ] -> (
          (* vector -> square matrix with the vector on the diagonal;
             matrix -> main diagonal as a column vector; scalar -> 1x1 *)
          match (a.aty.Ty.rank, a.aty.Ty.shape) with
          | Ty.Rscalar, _ -> { a with aconst = a.aconst }
          | Ty.Rmatrix, { Ty.rows = Ty.Dconst 1; cols = d }
          | Ty.Rmatrix, { Ty.rows = d; cols = Ty.Dconst 1 } ->
              of_ty (Ty.matrix ~shape:{ Ty.rows = d; cols = d } a.aty.Ty.base)
          | Ty.Rmatrix, { Ty.rows = Ty.Dconst r; cols = Ty.Dconst c } ->
              of_ty
                (Ty.matrix
                   ~shape:{ Ty.rows = Ty.Dconst (min r c); cols = Ty.Dconst 1 }
                   a.aty.Ty.base)
          | Ty.Rmatrix, _ -> of_ty (Ty.matrix a.aty.Ty.base)
          | Ty.Rtensor _, _ -> assert false (* rejected by no_tensor *))
      | _ -> Mlang.Source.error pos "diag takes one argument");
  (* external file input; the real type rule runs in Infer, which has
     the data directory and the literal filename *)
  register "load" Load 1 1 (fun _ _ -> of_ty Ty.real_matrix);
  (* explicit message passing (MatlabMPI-style).  The Recv type rule is
     a placeholder: Infer joins the types of every Send/Bcast that can
     reach a tag and overrides it. *)
  register "MPI_Comm_rank" (Mpi Mrank) 0 0 int_scalar_rule;
  register "MPI_Comm_size" (Mpi Msize) 0 0 int_scalar_rule;
  register "MPI_Send" (Mpi Msend) 3 3 (fun args pos ->
      no_tensor "MPI_Send" args pos;
      int_scalar_rule args pos);
  register "MPI_Recv" (Mpi Mrecv) 2 2 (fun _ _ -> of_ty Ty.real_matrix);
  register "MPI_Bcast" (Mpi Mbcast) 2 2 (fun args pos ->
      no_tensor "MPI_Bcast" args pos;
      match args with
      | [ _; v ] -> { v with aconst = None }
      | _ -> Mlang.Source.error pos "MPI_Bcast takes two arguments");
  register "MPI_Probe" (Mpi Mprobe) 2 2 int_scalar_rule;
  (* constants *)
  register "pi" (Constant Float.pi) 0 0 (fun _ _ -> const_real Float.pi);
  register "eps" (Constant epsilon_float) 0 0 (fun _ _ ->
      const_real epsilon_float)

let find name = Hashtbl.find_opt table name
let is_builtin name = Hashtbl.mem table name
let all () = Hashtbl.fold (fun _ b acc -> b :: acc) table []

let check_arity b nargs pos =
  if nargs < b.min_args || nargs > b.max_args then
    Mlang.Source.error pos "%s: expects %d..%d arguments, got %d" b.name
      b.min_args
      (if b.max_args = max_int then 99 else b.max_args)
      nargs
