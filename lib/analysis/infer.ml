(* Type, rank and shape inference (paper section 3, pass 3).

   Runs on the SSA form: each SSA version gets one abstract value (a
   {!Ty.t} plus an optional compile-time constant for scalars), and the
   whole program is re-scanned until a fixpoint is reached (loop phis
   make a single pass insufficient; the lattice is finite once constants
   collapse, so this terminates).

   Every expression node carries a mutable annotation record shared (by
   [{ e with node = ... }] copies) with the original resolved AST, so
   joining a type into [e.ann.ty] on the SSA form annotates the original
   tree directly: the rewriting pass and code generator read the results
   straight off the nodes, with no side table. *)

open Mlang

type av = Builtins.aval option (* None = bottom *)

type result = {
  var_ty : (string, Ty.t) Hashtbl.t; (* script variable -> joined type *)
  func_var_ty : (string, (string, Ty.t) Hashtbl.t) Hashtbl.t;
      (* function name -> variable -> joined type *)
  func_returns : (string, Ty.t list) Hashtbl.t;
      (* function name -> joined return types *)
}

type ctx = {
  res : result;
  datadir : string;
  versions : (string, Builtins.aval) Hashtbl.t; (* SSA version -> value *)
  funcs : (string, Ssa.sfunc) Hashtbl.t; (* converted user functions *)
  call_cache : (string, av list) Hashtbl.t; (* name+sig -> return values *)
  mpi_tags : (int, Builtins.aval) Hashtbl.t;
      (* message tag -> join of every value MPI_Send'd under it *)
  mpi_recvs : (int, Mlang.Source.pos) Hashtbl.t;
      (* tags received somewhere, for the never-sent check *)
  mutable in_progress : string list; (* recursion detection *)
  mutable changed : bool;
}

let join_av (a : av) (b : av) : av =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y ->
      let aty = Ty.join x.Builtins.aty y.Builtins.aty in
      let aconst =
        match (x.aconst, y.aconst) with
        | Some cx, Some cy when cx = cy && aty.Ty.rank = Ty.Rscalar -> Some cx
        | _ -> None
      in
      Some { Builtins.aty; aconst }

let equal_av (a : av) (b : av) =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Ty.equal x.Builtins.aty y.Builtins.aty && x.aconst = y.aconst
  | None, Some _ | Some _, None -> false

let get_version ctx v : av = Hashtbl.find_opt ctx.versions v

let set_version ctx v (value : av) =
  let joined = join_av (get_version ctx v) value in
  if not (equal_av joined (get_version ctx v)) then begin
    (match joined with
    | Some x -> Hashtbl.replace ctx.versions v x
    | None -> ());
    ctx.changed <- true
  end

let annotate (e : Ast.expr) (value : av) =
  match value with
  | None -> ()
  | Some { Builtins.aty; _ } -> e.ann.ty <- Ty.join_vt e.ann.ty (Ty.Known aty)

let scalar_av ?const base : av = Some { Builtins.aty = Ty.scalar base; aconst = const }

let num_av f : av =
  let base = if Float.is_integer f then Ty.Integer else Ty.Real in
  scalar_av ~const:f base

(* --- operator rules ---------------------------------------------------- *)

let fold_const op (a : Builtins.aval) (b : Builtins.aval) ty =
  match (a.Builtins.aconst, b.Builtins.aconst, ty.Ty.rank) with
  | Some x, Some y, Ty.Rscalar -> (
      match op with
      | Ast.Add -> Some (x +. y)
      | Ast.Sub -> Some (x -. y)
      | Ast.Mul | Ast.Emul -> Some (x *. y)
      | Ast.Div | Ast.Ediv -> if y = 0. then None else Some (x /. y)
      | Ast.Ldiv | Ast.Eldiv -> if x = 0. then None else Some (y /. x)
      | Ast.Pow | Ast.Epow -> Some (Float.pow x y)
      | Ast.Lt -> Some (if x < y then 1. else 0.)
      | Ast.Le -> Some (if x <= y then 1. else 0.)
      | Ast.Gt -> Some (if x > y then 1. else 0.)
      | Ast.Ge -> Some (if x >= y then 1. else 0.)
      | Ast.Eq -> Some (if x = y then 1. else 0.)
      | Ast.Ne -> Some (if x <> y then 1. else 0.)
      | Ast.And | Ast.Shortand -> Some (if x <> 0. && y <> 0. then 1. else 0.)
      | Ast.Or | Ast.Shortor -> Some (if x <> 0. || y <> 0. then 1. else 0.))
  | _ -> None

let binop_type pos op (a : Builtins.aval) (b : Builtins.aval) : Builtins.aval =
  let ta = a.Builtins.aty and tb = b.Builtins.aty in
  let ew base_rule = Ty.elementwise_result base_rule ta tb in
  let ty =
    match op with
    | Ast.Add | Ast.Sub | Ast.Emul -> ew Ty.arith_base
    | Ast.Ediv | Ast.Eldiv -> ew Ty.div_base
    | Ast.Epow -> ew (fun x y -> Ty.join_base (Ty.join_base x y) Ty.Real)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or ->
        ew Ty.logical_base
    | Ast.Shortand | Ast.Shortor -> Ty.scalar Ty.Integer
    | Ast.Mul -> (
        match (ta.Ty.rank, tb.Ty.rank) with
        | Ty.Rscalar, Ty.Rscalar -> Ty.scalar (Ty.arith_base ta.base tb.base)
        | Ty.Rscalar, _ -> { tb with base = Ty.arith_base ta.base tb.base }
        | _, Ty.Rscalar -> { ta with base = Ty.arith_base ta.base tb.base }
        | Ty.Rmatrix, Ty.Rmatrix ->
            let shape = { Ty.rows = ta.shape.Ty.rows; cols = tb.shape.Ty.cols } in
            if shape.Ty.rows = Ty.Dconst 1 && shape.Ty.cols = Ty.Dconst 1 then
              Ty.scalar (Ty.arith_base ta.base tb.base)
            else Ty.matrix ~shape (Ty.arith_base ta.base tb.base)
        | _ ->
            Source.error pos
              "matrix multiplication of a tensor is not supported; use .*")
    | Ast.Div -> (
        match (ta.Ty.rank, tb.Ty.rank) with
        | _, Ty.Rscalar ->
            let base = Ty.div_base ta.base tb.base in
            if ta.rank = Ty.Rscalar then Ty.scalar base else { ta with base }
        | _ ->
            Source.error pos
              "matrix right division is not supported; use element-wise ./")
    | Ast.Ldiv -> (
        match ta.Ty.rank with
        | Ty.Rscalar ->
            let base = Ty.div_base ta.base tb.base in
            if tb.rank = Ty.Rscalar then Ty.scalar base else { tb with base }
        | Ty.Rmatrix | Ty.Rtensor _ ->
            Source.error pos
              "matrix left division (linear solve) is not supported")
    | Ast.Pow -> (
        match (ta.Ty.rank, tb.Ty.rank) with
        | Ty.Rscalar, Ty.Rscalar ->
            Ty.scalar (Ty.join_base (Ty.arith_base ta.base tb.base) Ty.Real)
        | _ -> Source.error pos "matrix power is not supported; use .^")
  in
  { Builtins.aty = ty; aconst = fold_const op a b ty }

let unop_type pos op (a : Builtins.aval) : Builtins.aval =
  let ta = a.Builtins.aty in
  match op with
  | Ast.Neg ->
      {
        Builtins.aty = ta;
        aconst =
          (match a.aconst with Some c -> Some (-.c) | None -> None);
      }
  | Ast.Uplus -> a
  | Ast.Not ->
      {
        Builtins.aty = { ta with base = Ty.Integer };
        aconst =
          (match a.aconst with
          | Some c -> Some (if c = 0. then 1. else 0.)
          | None -> None);
      }
  | Ast.Transpose | Ast.Ctranspose ->
      let ty =
        match ta.Ty.rank with
        | Ty.Rscalar -> ta
        | Ty.Rmatrix -> { ta with shape = Ty.transpose_shape ta.shape }
        | Ty.Rtensor _ ->
            Source.error pos "transpose of a tensor is not supported"
      in
      { Builtins.aty = ty; aconst = a.aconst }

let range_type (a : Builtins.aval) (step : Builtins.aval option)
    (b : Builtins.aval) : Builtins.aval =
  let base =
    let sb = match step with Some s -> s.Builtins.aty.Ty.base | None -> Ty.Integer in
    Ty.join_base (Ty.join_base a.Builtins.aty.Ty.base b.Builtins.aty.Ty.base) sb
  in
  let cols =
    match (a.aconst, (match step with Some s -> s.Builtins.aconst | None -> Some 1.), b.aconst) with
    | Some x, Some s, Some y when s <> 0. ->
        let n = int_of_float (Float.floor (((y -. x) /. s) +. 1e-10)) + 1 in
        Ty.Dconst (max n 0)
    | _ -> Ty.Dunknown
  in
  Builtins.of_ty (Ty.matrix ~shape:{ Ty.rows = Ty.Dconst 1; cols } base)

let index_dim (arg : Ast.expr) (arg_av : av) : Ty.dim =
  match arg.node with
  | Ast.Colon -> Ty.Dunknown (* whole extent of that axis; refined below *)
  | _ -> (
      match arg_av with
      | Some { Builtins.aty; _ } -> (
          match aty.Ty.rank with
          | Ty.Rscalar -> Ty.Dconst 1
          | Ty.Rmatrix | Ty.Rtensor _ ->
              if aty.Ty.shape.Ty.rows = Ty.Dconst 1 then aty.Ty.shape.Ty.cols
              else aty.Ty.shape.Ty.rows)
      | None -> Ty.Dunknown)

(* --- expression evaluation --------------------------------------------- *)

let rec eval_expr ctx (e : Ast.expr) : av =
  let v = eval_expr_inner ctx e in
  annotate e v;
  v

and eval_expr_inner ctx (e : Ast.expr) : av =
  match e.node with
  | Ast.Num f -> num_av f
  | Ast.Str _ -> Some (Builtins.of_ty (Ty.scalar Ty.Literal))
  | Ast.Colon -> scalar_av Ty.Integer
  | Ast.End_marker -> scalar_av Ty.Integer
  | Ast.Varref v -> get_version ctx v
  | Ast.Binop (op, a, b) -> (
      let va = eval_expr ctx a and vb = eval_expr ctx b in
      match (va, vb) with
      | Some x, Some y ->
          let r = binop_type e.ann.pos op x y in
          (* Record the frame/cell lift: a lower-ranked operand mapped
             over the frame (leading axes) of a tensor operand. *)
          let fa = Ty.frame_axes x.Builtins.aty
          and fb = Ty.frame_axes y.Builtins.aty in
          if fa <> fb then e.ann.frame <- max e.ann.frame (max fa fb);
          Some r
      | _ -> None)
  | Ast.Unop (op, a) -> (
      match eval_expr ctx a with
      | Some x -> Some (unop_type e.ann.pos op x)
      | None -> None)
  | Ast.Range (a, step, b) -> (
      let va = eval_expr ctx a in
      let vs = Option.map (eval_expr ctx) step in
      let vb = eval_expr ctx b in
      match (va, vb) with
      | Some x, Some y ->
          let s = match vs with Some (Some s) -> Some s | _ -> None in
          Some (range_type x s y)
      | _ -> None)
  | Ast.Matrix rows -> eval_matrix ctx e.ann.pos rows
  | Ast.Index (v, args) -> (
      let mat = get_version ctx v in
      let arg_avs = List.map (eval_expr ctx) args in
      match mat with
      | None -> None
      | Some m -> Some (eval_index e.ann.pos m args arg_avs))
  | Ast.Call (name, args) -> (
      let arg_avs = List.map (eval_expr ctx) args in
      match eval_call ctx e.ann.pos name args arg_avs with
      | [] -> scalar_av Ty.Integer (* output-only call in expr position *)
      | r :: _ -> r)
  | Ast.Ident n | Ast.Apply (n, _) ->
      Source.error e.ann.pos "unresolved name '%s' reached inference" n

and eval_matrix ctx pos rows : av =
  let avs = List.map (List.map (eval_expr ctx)) rows in
  let all = List.concat avs in
  List.iter
    (fun a ->
      match a with
      | Some { Builtins.aty; _ } when Ty.is_tensor aty ->
          Source.error pos "a tensor cannot appear in a matrix literal"
      | _ -> ())
    all;
  if List.exists (fun a -> a = None) all then None
  else
    let base =
      List.fold_left
        (fun acc a ->
          match a with
          | Some { Builtins.aty; _ } -> Ty.join_base acc aty.Ty.base
          | None -> acc)
        Ty.Integer all
    in
    let all_scalar =
      List.for_all
        (fun a ->
          match a with
          | Some { Builtins.aty; _ } -> Ty.is_scalar aty
          | None -> false)
        all
    in
    if all_scalar then
      let r = List.length rows in
      let c = match rows with [] -> 0 | row :: _ -> List.length row in
      if r = 1 && c = 1 then
        match all with [ a ] -> a | _ -> assert false
      else
        Some
          (Builtins.of_ty
             (Ty.matrix ~shape:{ Ty.rows = Ty.Dconst r; cols = Ty.Dconst c } base))
    else
      (* Mixed scalar/matrix blocks: when every block shape is known,
         the grid shape is too.  Within a row, non-empty blocks must
         share a height and their widths add; row heights add.  Empty
         blocks are dropped (MATLAB), so an all-empty row contributes
         no rows.  Any unknown or inconsistent dimension degrades to
         an unknown shape (inconsistencies then fail at run time). *)
      let block_dims a =
        match a with
        | Some { Builtins.aty; _ } ->
            if Ty.is_scalar aty then Some (1, 1)
            else (
              match (aty.Ty.shape.Ty.rows, aty.Ty.shape.Ty.cols) with
              | Ty.Dconst r, Ty.Dconst c -> Some (r, c)
              | _ -> None)
        | None -> None
      in
      let exception Unknown in
      let shape =
        try
          let row_dims =
            List.map
              (fun row ->
                let dims =
                  List.map
                    (fun a ->
                      match block_dims a with
                      | Some d -> d
                      | None -> raise Unknown)
                    row
                in
                match List.filter (fun (r, c) -> r * c > 0) dims with
                | [] -> (0, 0)
                | (h, _) :: _ as nonempty ->
                    if List.for_all (fun (r, _) -> r = h) nonempty then
                      (h, List.fold_left (fun w (_, c) -> w + c) 0 nonempty)
                    else raise Unknown)
              avs
          in
          match List.filter (fun (h, _) -> h > 0) row_dims with
          | [] -> Some (0, 0)
          | (_, w) :: _ as live ->
              if List.for_all (fun (_, w') -> w' = w) live then
                Some (List.fold_left (fun r (h, _) -> r + h) 0 live, w)
              else raise Unknown
        with Unknown -> None
      in
      match shape with
      | Some (r, c) ->
          Some
            (Builtins.of_ty
               (Ty.matrix
                  ~shape:{ Ty.rows = Ty.Dconst r; cols = Ty.Dconst c }
                  base))
      | None -> Some (Builtins.of_ty (Ty.matrix base))

and eval_index pos (m : Builtins.aval) args arg_avs : Builtins.aval =
  let mty = m.Builtins.aty in
  if Ty.is_scalar mty then
    (* Indexing a scalar with 1 or (1,1) is legal MATLAB; result scalar. *)
    { m with aconst = None }
  else if Ty.is_tensor mty then eval_index_tensor pos m args arg_avs
  else
    match (args, arg_avs) with
    | [ a ], [ av ] -> (
        match index_dim a av with
        | Ty.Dconst 1 when (match a.node with Ast.Colon -> false | _ -> true) ->
            Builtins.of_ty (Ty.scalar mty.Ty.base)
        | d ->
            let d =
              match a.node with
              | Ast.Colon -> (
                  (* v(:) flattens *)
                  match (mty.Ty.shape.Ty.rows, mty.Ty.shape.Ty.cols) with
                  | Ty.Dconst r, Ty.Dconst c -> Ty.Dconst (r * c)
                  | _ -> Ty.Dunknown)
              | _ -> d
            in
            (* linear indexing keeps the vector orientation of the base *)
            let shape =
              if mty.Ty.shape.Ty.cols = Ty.Dconst 1 then
                { Ty.rows = d; cols = Ty.Dconst 1 }
              else { Ty.rows = Ty.Dconst 1; cols = d }
            in
            Builtins.of_ty (Ty.matrix ~shape mty.Ty.base))
    | [ a1; a2 ], [ av1; av2 ] -> (
        let d1 =
          match a1.node with
          | Ast.Colon -> mty.Ty.shape.Ty.rows
          | _ -> index_dim a1 av1
        in
        let d2 =
          match a2.node with
          | Ast.Colon -> mty.Ty.shape.Ty.cols
          | _ -> index_dim a2 av2
        in
        match (d1, d2) with
        | Ty.Dconst 1, Ty.Dconst 1
          when (match (a1.node, a2.node) with
               | Ast.Colon, _ | _, Ast.Colon -> false
               | _ -> true) ->
            Builtins.of_ty (Ty.scalar mty.Ty.base)
        | _ ->
            Builtins.of_ty
              (Ty.matrix ~shape:{ Ty.rows = d1; cols = d2 } mty.Ty.base))
    | _ -> Source.error pos "unsupported number of indices (%d)" (List.length args)

(* Tensors are indexed with exactly one subscript per axis (leading axis
   first).  All-scalar subscripts read one element; any sectioning
   subscript yields a tensor of the same rank (no dimension squeezing). *)
and eval_index_tensor pos (m : Builtins.aval) args arg_avs : Builtins.aval =
  let mty = m.Builtins.aty in
  let outer = match mty.Ty.rank with Ty.Rtensor o -> o | _ -> assert false in
  if List.length args <> 2 + List.length outer then
    Source.error pos
      "a rank-%d tensor must be indexed with exactly %d subscripts (got %d)"
      (Ty.total_rank mty)
      (2 + List.length outer)
      (List.length args);
  let axis_dims = outer @ [ mty.Ty.shape.Ty.rows; mty.Ty.shape.Ty.cols ] in
  let dims =
    List.map2
      (fun ((a : Ast.expr), av) extent ->
        match a.Ast.node with
        | Ast.Colon -> (extent, false)
        | _ -> (index_dim a av, (match index_dim a av with Ty.Dconst 1 -> true | _ -> false)))
      (List.combine args arg_avs) axis_dims
  in
  if List.for_all snd dims then Builtins.of_ty (Ty.scalar mty.Ty.base)
  else
    let ds = List.map fst dims in
    let rec split_last = function
      | [ r; c ] -> ([], r, c)
      | d :: rest ->
          let o, r, c = split_last rest in
          (d :: o, r, c)
      | [] -> assert false
    in
    let o, r, c = split_last ds in
    Builtins.of_ty (Ty.tensor ~outer:o ~shape:{ Ty.rows = r; cols = c } mty.Ty.base)

(* Returns the list of return-value abstract values of a call. *)
and eval_call ctx pos name args arg_avs : av list =
  match Builtins.find name with
  | Some { Builtins.kind = Builtins.Load; _ }
    when not (Hashtbl.mem ctx.funcs name) -> (
      (* Paper section 3: a sample data file must be present so the
         compiler can determine the variable's type, rank and shape. *)
      match args with
      | [ { Ast.node = Ast.Str fname; _ } ] -> (
          let path = Filename.concat ctx.datadir fname in
          match Mlang.Datafile.read path with
          | rows, cols, data ->
              let base =
                if Mlang.Datafile.all_integer data then Ty.Integer else Ty.Real
              in
              if rows = 1 && cols = 1 then [ scalar_av base ]
              else
                [
                  Some
                    (Builtins.of_ty
                       (Ty.matrix
                          ~shape:{ Ty.rows = Ty.Dconst rows; cols = Ty.Dconst cols }
                          base));
                ]
          | exception Mlang.Datafile.Bad_data msg ->
              Source.error pos
                "load(%S): a readable sample data file is required at compile \
                 time (%s)"
                fname msg)
      | _ -> Source.error pos "load takes one literal filename")
  | Some ({ Builtins.kind = Builtins.Mpi op; _ } as b)
    when not (Hashtbl.mem ctx.funcs name) ->
      Builtins.check_arity b (List.length args) pos;
      eval_mpi ctx pos name op arg_avs
  | Some b when not (Hashtbl.mem ctx.funcs name) ->
      Builtins.check_arity b (List.length args) pos;
      if List.exists (fun a -> a = None) arg_avs then [ None ]
      else
        let avs = List.map Option.get arg_avs in
        let r = b.Builtins.infer avs pos in
        [ Some r ]
  | _ -> (
      match Hashtbl.find_opt ctx.funcs name with
      | None -> Source.error pos "unknown function '%s'" name
      | Some f -> eval_user_call ctx pos f arg_avs)

(* Message tags must be compile-time constants: the type of an
   MPI_Recv is the join of every value sent under its tag, and that
   join is only computable when the tag is statically known. *)
and mpi_tag pos name (tag_av : av) =
  match tag_av with
  | Some { Builtins.aconst = Some f; _ } when f >= 0. && Float.is_integer f ->
      (* the run time maps user tags into their own tag space, well
         clear of the collectives' and the transport acks'; a bound on
         the user tag keeps those spaces disjoint *)
      if f > 1_000_000. then
        Source.error pos "%s: message tags must be at most 1000000" name
      else int_of_float f
  | _ ->
      Source.error pos
        "%s: the message tag must be a non-negative compile-time constant" name

and eval_mpi ctx pos name op arg_avs : av list =
  if List.exists (fun a -> a = None) arg_avs then [ None ]
  else
    match (op, arg_avs) with
    | (Builtins.Mrank | Builtins.Msize), [] -> [ scalar_av Ty.Integer ]
    | Builtins.Mprobe, [ _; tag_av ] ->
        ignore (mpi_tag pos name tag_av);
        [ scalar_av Ty.Integer ]
    | Builtins.Msend, [ _; tag_av; value ] ->
        let tag = mpi_tag pos name tag_av in
        (match value with
        | Some v ->
            let sent = Some { v with Builtins.aconst = None } in
            let old : av = Hashtbl.find_opt ctx.mpi_tags tag in
            let joined = join_av old sent in
            if not (equal_av joined old) then begin
              (match joined with
              | Some x -> Hashtbl.replace ctx.mpi_tags tag x
              | None -> ());
              ctx.changed <- true
            end
        | None -> ());
        [ scalar_av Ty.Integer ]
    | Builtins.Mrecv, [ _; tag_av ] ->
        let tag = mpi_tag pos name tag_av in
        if not (Hashtbl.mem ctx.mpi_recvs tag) then
          Hashtbl.replace ctx.mpi_recvs tag pos;
        [
          (match Hashtbl.find_opt ctx.mpi_tags tag with
          | Some v -> Some { v with Builtins.aconst = None }
          | None -> None);
        ]
    | Builtins.Mbcast, [ _; value ] ->
        [
          (match value with
          | Some v -> Some { v with Builtins.aconst = None }
          | None -> None);
        ]
    | _ -> Source.error pos "%s: wrong arguments" name

and eval_user_call ctx pos (f : Ssa.sfunc) arg_avs : av list =
  if List.length arg_avs <> List.length f.sf_params then
    Source.error pos "function '%s' expects %d arguments, got %d" f.sf_name
      (List.length f.sf_params) (List.length arg_avs);
  let sig_key =
    Fmt.str "%s(%a)" f.sf_name
      (Fmt.list ~sep:(Fmt.any ",") (fun ppf -> function
         | Some { Builtins.aty; _ } -> Ty.pp ppf aty
         | None -> Fmt.string ppf "_"))
      arg_avs
  in
  if List.mem f.sf_name ctx.in_progress then
    Source.error pos "recursive function '%s' is not supported" f.sf_name;
  match Hashtbl.find_opt ctx.call_cache sig_key with
  | Some rets -> rets
  | None ->
      ctx.in_progress <- f.sf_name :: ctx.in_progress;
      List.iter2 (fun p av -> set_version ctx p av) f.sf_params arg_avs;
      exec_block ctx f.sf_body;
      let rets =
        List.map
          (fun r ->
            match Ssa.Smap.find_opt r f.sf_final_env with
            | Some v -> get_version ctx v
            | None -> None)
          f.sf_returns
      in
      ctx.in_progress <- List.tl ctx.in_progress;
      Hashtbl.replace ctx.call_cache sig_key rets;
      rets

(* --- statement execution ----------------------------------------------- *)

and exec_phi ctx (p : Ssa.phi) =
  let v =
    List.fold_left (fun acc arg -> join_av acc (get_version ctx arg)) None p.args
  in
  set_version ctx p.target v

and exec_stmt ctx (s : Ssa.sstmt) =
  match s with
  | Ssa.Sassign (v, rhs, _) -> set_version ctx v (eval_expr ctx rhs)
  | Ssa.Supdate (v, old, idx, rhs) -> (
      List.iter (fun i -> ignore (eval_expr ctx i)) idx;
      let rv = eval_expr ctx rhs in
      match (get_version ctx old, rv) with
      | Some o, Some r ->
          let ty =
            {
              o.Builtins.aty with
              Ty.base = Ty.join_base o.aty.Ty.base r.Builtins.aty.Ty.base;
            }
          in
          set_version ctx v (Some { Builtins.aty = ty; aconst = None })
      | _ -> ())
  | Ssa.Smulti (defs, rhs) -> (
      match rhs.node with
      | Ast.Call (name, args) ->
          let arg_avs = List.map (eval_expr ctx) args in
          let rets = eval_call_multi ctx rhs.ann.pos name args arg_avs (List.length defs) in
          annotate rhs (match rets with r :: _ -> r | [] -> None);
          List.iter2 (fun (v, _) r -> set_version ctx v r) defs rets
      | _ -> assert false)
  | Ssa.Sexpr (e, _) -> ignore (eval_expr ctx e)
  | Ssa.Sif (branches, els, phis) ->
      List.iter
        (fun (c, b) ->
          ignore (eval_expr ctx c);
          exec_block ctx b)
        branches;
      exec_block ctx els;
      List.iter (exec_phi ctx) phis
  | Ssa.Swhile (phis, cond, body) ->
      List.iter (exec_phi ctx) phis;
      ignore (eval_expr ctx cond);
      exec_block ctx body;
      (* re-run phis so back edges are visible within this pass *)
      List.iter (exec_phi ctx) phis
  | Ssa.Sfor (v, range, phis, body) ->
      (let rv = eval_expr ctx range in
       let elem_base =
         match rv with
         | Some { Builtins.aty; _ } -> aty.Ty.base
         | None -> Ty.Integer
       in
       set_version ctx v (scalar_av elem_base));
      List.iter (exec_phi ctx) phis;
      exec_block ctx body;
      List.iter (exec_phi ctx) phis
  | Ssa.Sbreak | Ssa.Scontinue | Ssa.Sreturn -> ()

and eval_call_multi ctx pos name args arg_avs ndefs : av list =
  match Builtins.find name with
  | Some { Builtins.kind = Builtins.Query "size"; _ }
    when not (Hashtbl.mem ctx.funcs name) ->
      List.init ndefs (fun _ -> scalar_av Ty.Integer)
  | Some { Builtins.kind = Builtins.Sort; _ }
    when ndefs = 2 && not (Hashtbl.mem ctx.funcs name) ->
      (* [s, i] = sort(v): sorted values and the permutation *)
      let v = eval_call ctx pos name args arg_avs in
      (match v with
      | [ Some a ] -> [ Some a; Some { a with Builtins.aty = { a.Builtins.aty with Ty.base = Ty.Integer } } ]
      | _ -> [ None; None ])
  | Some { Builtins.kind = Builtins.Minmax _; _ }
    when ndefs = 2 && not (Hashtbl.mem ctx.funcs name) ->
      (* [m, i] = min(v): the extremum and its index *)
      let v = eval_call ctx pos name args arg_avs in
      (match v with
      | [ Some { Builtins.aty; _ } ] ->
          [ scalar_av aty.Ty.base; scalar_av Ty.Integer ]
      | _ -> [ None; scalar_av Ty.Integer ])
  | Some _ when not (Hashtbl.mem ctx.funcs name) ->
      if ndefs > 1 then
        Source.error pos "builtin '%s' returns a single value" name
      else eval_call ctx pos name args arg_avs
  | _ -> (
      match Hashtbl.find_opt ctx.funcs name with
      | None -> Source.error pos "unknown function '%s'" name
      | Some f ->
          let rets = eval_user_call ctx pos f arg_avs in
          if List.length rets < ndefs then
            Source.error pos "function '%s' returns %d values, %d requested"
              name (List.length rets) ndefs;
          List.filteri (fun i _ -> i < ndefs) rets)

and exec_block ctx (b : Ssa.sblock) = List.iter (exec_stmt ctx) b

(* --- entry point -------------------------------------------------------- *)

let default_ty = Ty.real_scalar

let program ?(datadir = ".") (p : Ast.program) : result =
  let res =
    {
      var_ty = Hashtbl.create 64;
      func_var_ty = Hashtbl.create 8;
      func_returns = Hashtbl.create 8;
    }
  in
  (* Reset annotations so inference is idempotent when re-run on the
     same AST (the fixpoint joins into [ann.ty] in place). *)
  let reset (e : Ast.expr) =
    e.ann.ty <- Ty.Bottom;
    e.ann.frame <- 0
  in
  Ast.iter_exprs reset p.script;
  List.iter (fun (f : Ast.func) -> Ast.iter_exprs reset f.fbody) p.funcs;
  let funcs = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace funcs f.Ast.fname (Ssa.convert_func f)) p.funcs;
  let script, _ = Ssa.convert_script p.script in
  let ctx =
    {
      res;
      datadir;
      versions = Hashtbl.create 256;
      funcs;
      call_cache = Hashtbl.create 16;
      mpi_tags = Hashtbl.create 8;
      mpi_recvs = Hashtbl.create 8;
      in_progress = [];
      changed = true;
    }
  in
  let passes = ref 0 in
  while ctx.changed && !passes < 50 do
    ctx.changed <- false;
    Hashtbl.reset ctx.call_cache;
    exec_block ctx script;
    incr passes
  done;
  (* A receive on a tag nothing ever sends has no type (and would
     deadlock): reject it statically. *)
  Hashtbl.iter
    (fun tag pos ->
      if not (Hashtbl.mem ctx.mpi_tags tag) then
        Source.error pos "MPI_Recv: no MPI_Send in the program sends tag %d"
          tag)
    ctx.mpi_recvs;
  (* Variable declarations: join over all versions.  A version's scope
     prefix ("f:x@3") routes it to the owning function's table. *)
  Hashtbl.iter
    (fun name _ -> Hashtbl.replace res.func_var_ty name (Hashtbl.create 8))
    funcs;
  Hashtbl.iter
    (fun version value ->
      let base = Ssa.base_of_version version in
      let tbl =
        match Ssa.scope_of_version version with
        | Some fname -> (
            match Hashtbl.find_opt res.func_var_ty fname with
            | Some tbl -> tbl
            | None -> res.var_ty)
        | None -> res.var_ty
      in
      let joined =
        match Hashtbl.find_opt tbl base with
        | Some old -> Ty.join old value.Builtins.aty
        | None -> value.Builtins.aty
      in
      Hashtbl.replace tbl base joined)
    ctx.versions;
  (* record joined return types *)
  Hashtbl.iter
    (fun name (f : Ssa.sfunc) ->
      let rets =
        List.map
          (fun r ->
            match
              Hashtbl.find_opt
                (Hashtbl.find res.func_var_ty name)
                r
            with
            | Some t -> t
            | None -> default_ty)
          f.sf_returns
      in
      Hashtbl.replace res.func_returns name rets)
    funcs;
  res

(* Inference writes directly into the node annotation; a node never
   reached by the abstract interpreter keeps Bottom and defaults. *)
let expr_type (e : Ast.expr) : Ty.t =
  match e.ann.ty with Ty.Known t -> t | Ty.Bottom -> default_ty

let var_type res name : Ty.t =
  match Hashtbl.find_opt res.var_ty name with Some t -> t | None -> default_ty
