(** Type / rank / shape inference (paper pass 3): abstract
    interpretation over the SSA form, to fixpoint across loop phis,
    with compile-time constant propagation feeding shape inference.

    Inferred expression types are written directly into the AST node
    annotations ([Ast.ann.ty], plus [Ast.ann.frame] for frame-broadcast
    lifts); the [result] record only carries the per-variable joins. *)

type result = {
  var_ty : (string, Ty.t) Hashtbl.t; (** script variable -> joined type *)
  func_var_ty : (string, (string, Ty.t) Hashtbl.t) Hashtbl.t;
  func_returns : (string, Ty.t list) Hashtbl.t;
}

val program : ?datadir:string -> Mlang.Ast.program -> result
(** Infer a resolved program.  [datadir] locates the sample data files
    that [load] requires at compile time (paper section 3).  Resets and
    then fills in the [ann.ty]/[ann.frame] annotations of every
    expression node of [p] as a side effect. *)

val expr_type : Mlang.Ast.expr -> Ty.t
(** The annotation written by [program], defaulting to real scalar for
    nodes the abstract interpreter never reached. *)

val var_type : result -> string -> Ty.t
