(* Static single assignment conversion (paper section 3, pass 3).

   MATLAB lets a variable change type, rank and shape during execution;
   converting to SSA form gives every assignment its own name so the
   static inference mechanism can attach exact attributes to each
   version.  We produce a structured SSA program: the statement shapes of
   the AST are kept, variables are renamed to versions written "x@3",
   and phi pseudo-definitions appear at the joins of if statements and at
   loop headers.

   Version "x@0" denotes the uninitialized variable (possible when a
   variable is only assigned on some paths); inference types it Bottom.

   Expression node ids are preserved by renaming, which lets inference
   results on the SSA form annotate the original AST nodes directly. *)

open Mlang

module Smap = Map.Make (String)

type phi = { target : string; base : string; args : string list }

type sstmt =
  | Sassign of string * Ast.expr * bool (* version = renamed rhs *)
  | Supdate of string * string * Ast.expr list * Ast.expr
    (* new version, old version, renamed indices, renamed rhs:
       an element or section update  a(i,j) = e *)
  | Smulti of (string * string) list * Ast.expr
    (* (new version, base) list = renamed call *)
  | Sexpr of Ast.expr * bool
  | Sif of (Ast.expr * sblock) list * sblock * phi list
  | Swhile of phi list * Ast.expr * sblock
  | Sfor of string * Ast.expr * phi list * sblock
  | Sbreak
  | Scontinue
  | Sreturn

and sblock = sstmt list

type sfunc = {
  sf_name : string;
  sf_params : string list; (* versions, "p@1" *)
  sf_returns : string list; (* base names; looked up in final env *)
  sf_body : sblock;
  sf_final_env : string Smap.t; (* base -> version at exit *)
}

(* [ns] namespaces versions so that function locals never collide with
   script variables in the shared inference table: a function [f]'s
   variable [x] gets versions "f:x@1", "f:x@2", ... *)
type ctx = { counters : (string, int) Hashtbl.t; ns : string }

(* "f:x@3" -> scope Some "f", base "x" *)
let scope_of_version v =
  match String.index_opt v ':' with
  | Some i -> Some (String.sub v 0 i)
  | None -> None

let base_of_version v =
  let start =
    match String.index_opt v ':' with Some i -> i + 1 | None -> 0
  in
  let stop =
    match String.index_opt v '@' with Some i -> i | None -> String.length v
  in
  String.sub v start (stop - start)

let fresh ctx base =
  let n = match Hashtbl.find_opt ctx.counters base with Some n -> n | None -> 0 in
  Hashtbl.replace ctx.counters base (n + 1);
  Printf.sprintf "%s%s@%d" ctx.ns base (n + 1)

let version_of ?(ns = "") env base =
  match Smap.find_opt base env with Some v -> v | None -> ns ^ base ^ "@0"

let rec rename_expr ctx env (e : Ast.expr) : Ast.expr =
  let re = rename_expr ctx env in
  match e.node with
  | Ast.Num _ | Ast.Str _ | Ast.Colon | Ast.End_marker -> e
  | Ast.Varref name ->
      { e with node = Ast.Varref (version_of ~ns:ctx.ns env name) }
  | Ast.Index (name, args) ->
      { e with node = Ast.Index (version_of ~ns:ctx.ns env name, List.map re args) }
  | Ast.Call (name, args) -> { e with node = Ast.Call (name, List.map re args) }
  | Ast.Binop (op, a, b) -> { e with node = Ast.Binop (op, re a, re b) }
  | Ast.Unop (op, a) -> { e with node = Ast.Unop (op, re a) }
  | Ast.Range (a, step, b) ->
      { e with node = Ast.Range (re a, Option.map re step, re b) }
  | Ast.Matrix rows -> { e with node = Ast.Matrix (List.map (List.map re) rows) }
  | Ast.Ident name ->
      Source.error e.ann.pos "unresolved identifier '%s' reached SSA" name
  | Ast.Apply (name, _) ->
      Source.error e.ann.pos "unresolved application '%s' reached SSA" name

(* Base names assigned anywhere in a block (including nested blocks). *)
let rec assigned_in_block acc (b : Ast.block) =
  List.fold_left assigned_in_stmt acc b

and assigned_in_stmt acc (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign (l, _, _) -> Smap.add l.lv_name () acc
  | Ast.Multi_assign (ls, _, _) ->
      List.fold_left (fun acc l -> Smap.add l.Ast.lv_name () acc) acc ls
  | Ast.Expr _ | Ast.Break | Ast.Continue | Ast.Return -> acc
  | Ast.If (branches, els) ->
      let acc =
        List.fold_left (fun acc (_, b) -> assigned_in_block acc b) acc branches
      in
      assigned_in_block acc els
  | Ast.While (_, b) -> assigned_in_block acc b
  | Ast.For (v, _, b) -> assigned_in_block (Smap.add v () acc) b

let rec convert_block ctx env (b : Ast.block) : sblock * string Smap.t =
  List.fold_left
    (fun (acc, env) s ->
      let s', env' = convert_stmt ctx env s in
      (s' :: acc, env'))
    ([], env) b
  |> fun (acc, env) -> (List.rev acc, env)

and convert_stmt ctx env (s : Ast.stmt) : sstmt * string Smap.t =
  match s.sdesc with
  | Ast.Assign ({ lv_name; lv_indices = None; _ }, rhs, display) ->
      let rhs = rename_expr ctx env rhs in
      let v = fresh ctx lv_name in
      (Sassign (v, rhs, display), Smap.add lv_name v env)
  | Ast.Assign ({ lv_name; lv_indices = Some idx; _ }, rhs, _) ->
      let rhs = rename_expr ctx env rhs in
      let idx = List.map (rename_expr ctx env) idx in
      let old = version_of ~ns:ctx.ns env lv_name in
      let v = fresh ctx lv_name in
      (Supdate (v, old, idx, rhs), Smap.add lv_name v env)
  | Ast.Multi_assign (ls, rhs, _) ->
      let rhs = rename_expr ctx env rhs in
      let defs, env =
        List.fold_left
          (fun (defs, env) (l : Ast.lhs) ->
            let v = fresh ctx l.lv_name in
            ((v, l.lv_name) :: defs, Smap.add l.lv_name v env))
          ([], env) ls
      in
      (Smulti (List.rev defs, rhs), env)
  | Ast.Expr (e, display) -> (Sexpr (rename_expr ctx env e, display), env)
  | Ast.If (branches, els) ->
      let rename_branch (c, b) =
        let c = rename_expr ctx env c in
        let b', env' = convert_block ctx env b in
        (c, b', env')
      in
      let branches' = List.map rename_branch branches in
      let els', els_env = convert_block ctx env els in
      let all_envs = List.map (fun (_, _, e) -> e) branches' @ [ els_env ] in
      let assigned =
        let acc =
          List.fold_left (fun acc (_, b) -> assigned_in_block acc b) Smap.empty
            branches
        in
        assigned_in_block acc els
      in
      let phis, env =
        Smap.fold
          (fun base () (phis, env') ->
            let args = List.map (fun e -> version_of ~ns:ctx.ns e base) all_envs in
            let target = fresh ctx base in
            ({ target; base; args } :: phis, Smap.add base target env'))
          assigned ([], env)
      in
      ( Sif (List.map (fun (c, b, _) -> (c, b)) branches', els', List.rev phis),
        env )
  | Ast.While (cond, body) ->
      let header_phis, body_env = loop_header ctx env body Smap.empty in
      let cond = rename_expr ctx body_env cond in
      let body', end_env = convert_block ctx body_env body in
      let phis = fill_backedges ctx header_phis end_env in
      (Swhile (phis, cond, body'), body_env)
  | Ast.For (v, range, body) ->
      let range = rename_expr ctx env range in
      let loop_var = fresh ctx v in
      let env_with_var = Smap.add v loop_var env in
      let header_phis, body_env =
        loop_header ctx env_with_var body (Smap.singleton v ())
      in
      let body', end_env = convert_block ctx body_env body in
      let phis = fill_backedges ctx header_phis end_env in
      (Sfor (loop_var, range, phis, body'), body_env)
  | Ast.Break -> (Sbreak, env)
  | Ast.Continue -> (Scontinue, env)
  | Ast.Return -> (Sreturn, env)

(* Create header phi versions for every variable assigned in the loop
   body (excluding [skip], e.g. the for-loop variable itself which is
   redefined by the loop construct).  Their back-edge arguments are not
   known yet; [fill_backedges] completes them after the body has been
   renamed. *)
and loop_header ctx env body skip =
  let assigned = assigned_in_block Smap.empty body in
  let assigned = Smap.filter (fun v () -> not (Smap.mem v skip)) assigned in
  Smap.fold
    (fun base () (phis, env') ->
      let entry = version_of ~ns:ctx.ns env base in
      let target = fresh ctx base in
      (({ target; base; args = [ entry ] } : phi) :: phis,
       Smap.add base target env'))
    assigned ([], env)

and fill_backedges ctx phis end_env =
  List.rev_map
    (fun (p : phi) ->
      { p with args = p.args @ [ version_of ~ns:ctx.ns end_env p.base ] })
    phis

let convert_body ?(ns = "") ?(params = []) (b : Ast.block) : sblock * string Smap.t * string list
    =
  let ctx = { counters = Hashtbl.create 16; ns } in
  let env, param_versions =
    List.fold_left
      (fun (env, pvs) p ->
        let v = fresh ctx p in
        (Smap.add p v env, v :: pvs))
      (Smap.empty, []) params
  in
  let body, final_env = convert_block ctx env b in
  (body, final_env, List.rev param_versions)

let convert_script (b : Ast.block) : sblock * string Smap.t =
  let body, env, _ = convert_body b in
  (body, env)

let convert_func (f : Ast.func) : sfunc =
  let body, final_env, param_versions =
    convert_body ~ns:(f.fname ^ ":") ~params:f.params f.fbody
  in
  {
    sf_name = f.fname;
    sf_params = param_versions;
    sf_returns = f.returns;
    sf_body = body;
    sf_final_env = final_env;
  }

(* --- well-formedness check used by tests and assertions --------------- *)

(* Every version is defined at most once across the whole block. *)
let single_assignment_holds (b : sblock) =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  let def v =
    if Hashtbl.mem seen v then ok := false else Hashtbl.add seen v ()
  in
  let rec go_block b = List.iter go_stmt b
  and go_stmt = function
    | Sassign (v, _, _) -> def v
    | Supdate (v, _, _, _) -> def v
    | Smulti (defs, _) -> List.iter (fun (v, _) -> def v) defs
    | Sexpr _ | Sbreak | Scontinue | Sreturn -> ()
    | Sif (branches, els, phis) ->
        List.iter (fun (_, b) -> go_block b) branches;
        go_block els;
        List.iter (fun (p : phi) -> def p.target) phis
    | Swhile (phis, _, b) ->
        List.iter (fun (p : phi) -> def p.target) phis;
        go_block b
    | Sfor (v, _, phis, b) ->
        def v;
        List.iter (fun (p : phi) -> def p.target) phis;
        go_block b
  in
  go_block b;
  !ok
